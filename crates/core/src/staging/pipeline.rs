//! The pipelined chunked stager.
//!
//! Mirrors the paper's "move parts" structure (§4, Table 2): a *serial*
//! staging-disk read pass cuts each part into chunks of
//! ~[`crate::IpaConfig::stage_chunk_bytes`] bytes, and *parallel* LAN
//! transfer workers move the chunks to the engines' side. A bounded queue
//! between the two provides backpressure: the reader blocks when transfers
//! fall behind, exactly like a staging disk throttled by the site NIC.
//!
//! With `stage_overlap` on, the reader and the transfer pool run
//! concurrently (the pipelined shape); off, the full read pass completes
//! before the first transfer starts (the paper's eager shape — Table 2's
//! serial read-then-move). Delivery is bit-identical either way: chunks
//! are reassembled per part in sequence order, and the records are moved
//! (never re-encoded), so a staged part equals the split output exactly.
//!
//! Transfers retry per part with exponential backoff; a
//! [`StageFaultPlan`] injects deterministic failures for chaos tests. A
//! part that exhausts its retry budget aborts the whole stage with a
//! structured [`TerminalFailure`], which [`super::SitePlane`] surfaces as
//! [`crate::CoreError::StagingFailure`].
//!
//! Real wall-clock is the movement of in-memory buffers between threads;
//! the *simulated* times (what the 2006 testbed would have cost) are
//! computed against the same knobs `ipa_simgrid::stage` calibrates:
//! the staging-disk MB/s and the LAN per-stream bandwidth/latency of
//! [`ipa_simgrid::PaperCalibration`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crossbeam::channel::bounded;
use ipa_dataset::{AnyRecord, SplitPlan};
use ipa_simgrid::PaperCalibration;

use crate::config::IpaConfig;

/// Deterministic transfer fault injection: part → number of failing
/// transfer attempts before transfers start succeeding. The plan is armed
/// on the plane and applies afresh to each stage operation. It composes
/// with the per-part retry budget: `failures ≤ stage_retries` is absorbed
/// (counted in [`super::StagingStats::retries`]), more is terminal.
#[derive(Debug, Clone, Default)]
pub struct StageFaultPlan {
    fail_first: HashMap<u64, u32>,
}

impl StageFaultPlan {
    /// Fail the first `times` transfer attempts of `part`.
    pub fn fail_part(mut self, part: u64, times: u32) -> Self {
        self.fail_first.insert(part, times);
        self
    }

    /// True when no faults are armed.
    pub fn is_empty(&self) -> bool {
        self.fail_first.is_empty()
    }
}

/// Pipeline knobs, resolved from [`IpaConfig`] plus the paper-calibrated
/// timing constants.
#[derive(Debug, Clone, Copy)]
pub struct StagerConfig {
    /// Target chunk size in bytes (≥ 1 record per chunk regardless).
    pub chunk_bytes: usize,
    /// Bounded-queue depth between reader and transfer pool.
    pub queue_depth: usize,
    /// Failed transfer attempts absorbed per part before aborting.
    pub retries: u32,
    /// Overlap the serial read with the parallel transfers.
    pub overlap: bool,
    /// Transfer worker threads (parallel LAN streams).
    pub workers: usize,
    /// Simulated staging-disk sequential read bandwidth, MB/s.
    pub disk_mbps: f64,
    /// Simulated LAN per-stream bandwidth, MB/s.
    pub lan_stream_mbps: f64,
    /// Simulated LAN aggregate source cap, MB/s.
    pub lan_aggregate_mbps: f64,
    /// Simulated LAN per-transfer (per-chunk) latency, seconds.
    pub lan_latency_s: f64,
    /// Simulated LAN per-file (per-part) protocol overhead, seconds.
    pub lan_per_file_s: f64,
}

impl StagerConfig {
    /// Resolve from config knobs; simulated rates come from the same 2006
    /// calibration `ipa_simgrid::stage` reproduces Table 2 with.
    pub fn from_config(config: &IpaConfig) -> Self {
        let cal = PaperCalibration::paper2006();
        StagerConfig {
            chunk_bytes: config.stage_chunk_bytes.max(1),
            queue_depth: config.stage_queue_depth.max(1),
            retries: config.stage_retries,
            overlap: config.stage_overlap,
            workers: 4,
            disk_mbps: cal.staging_disk_mbps,
            lan_stream_mbps: cal.network.lan.stream_bw_mbps,
            lan_aggregate_mbps: cal.network.lan.aggregate_bw_mbps,
            lan_latency_s: cal.network.lan.latency_s,
            lan_per_file_s: cal.network.lan.per_file_overhead_s,
        }
    }
}

/// Terminal per-part staging failure (retry budget exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminalFailure {
    /// The part whose transfers kept failing.
    pub part: u64,
    /// Failed transfer attempts made for that part (budget + 1).
    pub attempts: u32,
}

/// What one [`Stager::deliver`] run produced.
pub struct StageOutcome {
    /// The reassembled parts (bit-identical to the split input), or the
    /// terminal failure that aborted delivery.
    pub result: Result<Vec<Vec<AnyRecord>>, TerminalFailure>,
    /// Successful chunk transfers performed.
    pub chunks_sent: u64,
    /// Failed attempts absorbed by the retry budget.
    pub retries: u64,
    /// Simulated serial staging-disk read pass, seconds.
    pub sim_read_s: f64,
    /// Simulated parallel LAN transfer phase, seconds.
    pub sim_transfer_s: f64,
    /// Simulated total under the configured overlap mode, seconds.
    pub sim_pipelined_s: f64,
    /// `1 − pipelined/(read+transfer)`, the simulated fraction of eager
    /// staging hidden by overlap (0 when overlap is off or nothing can
    /// overlap).
    pub overlap_ratio: f64,
}

/// One chunk in flight between the reader and the transfer pool.
struct Chunk {
    part: usize,
    seq: u32,
    records: Vec<AnyRecord>,
}

/// The chunked transfer pipeline. Construct per stage operation.
pub struct Stager {
    config: StagerConfig,
    faults: HashMap<u64, u32>,
}

impl Stager {
    /// A stager with the given knobs and armed faults.
    pub fn new(config: StagerConfig, faults: &StageFaultPlan) -> Self {
        Stager {
            config,
            faults: faults.fail_first.clone(),
        }
    }

    /// Cut `parts` into chunks and deliver them through the transfer pool,
    /// reassembling each part in order. Records are moved, not cloned.
    pub fn deliver(self, mut parts: Vec<Vec<AnyRecord>>, plan: &SplitPlan) -> StageOutcome {
        let n_parts = parts.len();
        // Records per chunk for each part, from the plan's byte sizes: a
        // part of B bytes and R records gets ~R·chunk_bytes/B records per
        // chunk (≥ 1). Empty or zero-byte parts go as one chunk.
        let chunk_records: Vec<usize> = plan
            .ranges
            .iter()
            .map(|&(_, count, bytes)| {
                if bytes == 0 || count == 0 {
                    usize::MAX
                } else {
                    ((self.config.chunk_bytes as u64 * count).div_ceil(bytes) as usize).max(1)
                }
            })
            .collect();

        // Chunks arrive out of order across workers; each part reassembles
        // by sequence number at the end.
        let assembled: Vec<Mutex<Vec<(u32, Vec<AnyRecord>)>>> =
            (0..n_parts).map(|_| Mutex::new(Vec::new())).collect();
        let part_failures: Vec<AtomicU64> = (0..n_parts).map(|_| AtomicU64::new(0)).collect();
        let faults = Mutex::new(self.faults.clone());
        let abort = AtomicBool::new(false);
        let failure = Mutex::new(None::<TerminalFailure>);
        let chunks_sent = AtomicU64::new(0);
        let retries = AtomicU64::new(0);
        let retry_budget = self.config.retries;

        // One chunk's transfer, with the per-part retry/backoff loop.
        let transfer = |chunk: Chunk| {
            loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let should_fail = {
                    let mut f = faults.lock().expect("fault plan lock");
                    match f.get_mut(&(chunk.part as u64)) {
                        Some(left) if *left > 0 => {
                            *left -= 1;
                            true
                        }
                        _ => false,
                    }
                };
                if !should_fail {
                    chunks_sent.fetch_add(1, Ordering::Relaxed);
                    assembled[chunk.part]
                        .lock()
                        .expect("assembly lock")
                        .push((chunk.seq, chunk.records));
                    return;
                }
                let fails = part_failures[chunk.part].fetch_add(1, Ordering::Relaxed) as u32 + 1;
                if fails > retry_budget {
                    // `fetch_add` hands out attempt numbers uniquely, so
                    // exactly one thread sees `budget + 1` — it records the
                    // terminal failure; later losers only confirm the abort.
                    if fails == retry_budget + 1 {
                        *failure.lock().expect("failure lock") = Some(TerminalFailure {
                            part: chunk.part as u64,
                            attempts: fails,
                        });
                    }
                    abort.store(true, Ordering::Relaxed);
                    return;
                }
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(50u64 << fails.min(8)));
            }
        };

        let (tx, rx) = bounded::<Chunk>(self.config.queue_depth);
        let workers = self.config.workers.clamp(1, n_parts.max(1));
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let rx = rx.clone();
                let transfer = &transfer;
                let abort = &abort;
                handles.push(scope.spawn(move || {
                    // Keep draining after an abort (discarding chunks) so a
                    // reader blocked on the bounded queue can never
                    // deadlock against exited workers.
                    while let Ok(chunk) = rx.recv() {
                        if !abort.load(Ordering::Relaxed) {
                            transfer(chunk);
                        }
                    }
                }));
            }
            drop(rx);

            // The serial staging-disk read pass: parts in order, chunks in
            // order within a part. Overlap mode feeds the (bounded) queue
            // as it reads — backpressure blocks the reader when transfers
            // lag; eager mode completes the whole read pass first.
            let mut read_pass = |sink: &mut dyn FnMut(Chunk) -> bool| {
                for (part, records) in parts.drain(..).enumerate() {
                    let per = chunk_records[part];
                    let mut seq = 0u32;
                    if records.is_empty() {
                        if !sink(Chunk {
                            part,
                            seq,
                            records: Vec::new(),
                        }) {
                            return;
                        }
                        continue;
                    }
                    let mut records = records.into_iter();
                    loop {
                        let chunk: Vec<AnyRecord> = records.by_ref().take(per).collect();
                        if chunk.is_empty() {
                            break;
                        }
                        if !sink(Chunk {
                            part,
                            seq,
                            records: chunk,
                        }) {
                            return;
                        }
                        seq += 1;
                    }
                }
            };

            if self.config.overlap {
                let mut sink = |c: Chunk| !abort.load(Ordering::Relaxed) && tx.send(c).is_ok();
                read_pass(&mut sink);
            } else {
                let mut staged: Vec<Chunk> = Vec::new();
                let mut sink = |c: Chunk| {
                    staged.push(c);
                    true
                };
                read_pass(&mut sink);
                for c in staged {
                    if abort.load(Ordering::Relaxed) || tx.send(c).is_err() {
                        break;
                    }
                }
            }
            drop(tx);
            for h in handles {
                let _ = h.join();
            }
        });

        let (sim_read_s, sim_transfer_s, sim_pipelined_s, overlap_ratio) =
            self.simulate(plan, &chunk_records);

        let result = match failure.into_inner().expect("failure lock") {
            Some(f) => Err(f),
            None => {
                let mut out = Vec::with_capacity(n_parts);
                for slot in assembled {
                    let mut chunks = slot.into_inner().expect("assembly lock");
                    chunks.sort_by_key(|&(seq, _)| seq);
                    let mut part: Vec<AnyRecord> = Vec::new();
                    for (_, mut recs) in chunks {
                        part.append(&mut recs);
                    }
                    out.push(part);
                }
                Ok(out)
            }
        };
        StageOutcome {
            result,
            chunks_sent: chunks_sent.into_inner(),
            retries: retries.into_inner(),
            sim_read_s,
            sim_transfer_s,
            sim_pipelined_s,
            overlap_ratio,
        }
    }

    /// What this stage would cost on the calibrated 2006 site: a serial
    /// disk read of all bytes, then per-part LAN streams in parallel
    /// (per-chunk latency, per-part file overhead, per-stream bandwidth
    /// capped by the source aggregate) — the same structure
    /// `ipa_simgrid::stage` uses for Table 2's move-parts column. The
    /// pipelined total overlaps the shorter phase behind the longer one,
    /// down to the granularity of one chunk.
    fn simulate(&self, plan: &SplitPlan, chunk_records: &[usize]) -> (f64, f64, f64, f64) {
        let total_mb: f64 = plan.ranges.iter().map(|r| r.2 as f64).sum::<f64>() / 1e6;
        let read_s = if self.config.disk_mbps > 0.0 {
            total_mb / self.config.disk_mbps
        } else {
            0.0
        };
        let streams = plan.ranges.iter().filter(|r| r.2 > 0).count().max(1);
        let per_stream = self
            .config
            .lan_stream_mbps
            .min(self.config.lan_aggregate_mbps / streams as f64)
            .max(f64::MIN_POSITIVE);
        let part_chunks = |count: u64, per: usize| -> u64 {
            if per == usize::MAX {
                1
            } else {
                count.div_ceil(per as u64).max(1)
            }
        };
        let transfer_s = plan
            .ranges
            .iter()
            .zip(chunk_records)
            .map(|(&(_, count, bytes), &per)| {
                if bytes == 0 {
                    return 0.0;
                }
                self.config.lan_per_file_s
                    + part_chunks(count, per) as f64 * self.config.lan_latency_s
                    + bytes as f64 / 1e6 / per_stream
            })
            .fold(0.0, f64::max);
        let total_chunks: f64 = plan
            .ranges
            .iter()
            .zip(chunk_records)
            .map(|(&(_, count, _), &per)| part_chunks(count, per) as f64)
            .sum::<f64>()
            .max(1.0);
        let eager = read_s + transfer_s;
        let pipelined = if self.config.overlap {
            // Two-stage pipeline: the longer phase hides the shorter one
            // except for the pipeline-fill cost of ~one chunk.
            (read_s.max(transfer_s) + read_s.min(transfer_s) / total_chunks).min(eager)
        } else {
            eager
        };
        let ratio = if self.config.overlap && eager > 0.0 {
            (1.0 - pipelined / eager).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (read_s, transfer_s, pipelined, ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{split_even, CollisionEvent};

    fn records(n: u64) -> Vec<AnyRecord> {
        (0..n)
            .map(|i| {
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect()
    }

    fn config() -> StagerConfig {
        StagerConfig {
            chunk_bytes: 256,
            queue_depth: 2,
            retries: 2,
            overlap: true,
            workers: 4,
            disk_mbps: 10.24,
            lan_stream_mbps: 7.6,
            lan_aggregate_mbps: 100.0,
            lan_latency_s: 0.5,
            lan_per_file_s: 1.0,
        }
    }

    fn deliver(cfg: StagerConfig, recs: &[AnyRecord], n: usize) -> StageOutcome {
        let (parts, plan) = split_even(recs, n).unwrap();
        Stager::new(cfg, &StageFaultPlan::default()).deliver(parts, &plan)
    }

    #[test]
    fn delivery_is_bit_identical_and_chunked() {
        let recs = records(200);
        let (want, plan) = split_even(&recs, 4).unwrap();
        let out = Stager::new(config(), &StageFaultPlan::default()).deliver(want.clone(), &plan);
        assert_eq!(out.result.unwrap(), want);
        assert!(
            out.chunks_sent > 4,
            "small chunk_bytes must cut multiple chunks per part, got {}",
            out.chunks_sent
        );
        assert_eq!(out.retries, 0);
        assert!(out.sim_read_s > 0.0 && out.sim_transfer_s > 0.0);
        assert!(out.overlap_ratio > 0.0);
    }

    #[test]
    fn eager_mode_matches_and_reports_no_overlap() {
        let recs = records(100);
        let out = deliver(
            StagerConfig {
                overlap: false,
                ..config()
            },
            &recs,
            3,
        );
        let (want, _) = split_even(&recs, 3).unwrap();
        assert_eq!(out.result.unwrap(), want);
        assert_eq!(out.overlap_ratio, 0.0);
    }

    #[test]
    fn empty_parts_are_delivered_empty() {
        // More parts than records → empty tail parts must come back.
        let recs = records(2);
        let out = deliver(config(), &recs, 5);
        let parts = out.result.unwrap();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
        let empty = deliver(config(), &[], 3);
        assert_eq!(empty.result.unwrap().len(), 3);
    }

    #[test]
    fn faults_within_budget_retry_and_succeed() {
        let recs = records(50);
        let (parts, plan) = split_even(&recs, 2).unwrap();
        let out = Stager::new(
            StagerConfig {
                retries: 3,
                ..config()
            },
            &StageFaultPlan::default().fail_part(1, 2),
        )
        .deliver(parts.clone(), &plan);
        assert_eq!(out.result.unwrap(), parts);
        assert_eq!(out.retries, 2);
    }

    #[test]
    fn faults_beyond_budget_are_terminal() {
        let recs = records(50);
        let (parts, plan) = split_even(&recs, 2).unwrap();
        let out = Stager::new(
            StagerConfig {
                retries: 1,
                ..config()
            },
            &StageFaultPlan::default().fail_part(0, 10),
        )
        .deliver(parts, &plan);
        let failure = out.result.unwrap_err();
        assert_eq!(failure.part, 0);
        assert_eq!(failure.attempts, 2);
        assert!(out.retries >= 1);
    }

    #[test]
    fn simulated_times_reproduce_move_parts_shape() {
        // 471 MB over 16 parts on the 2006 calibration: the serial read is
        // ~46 s and the parallel transfer a few seconds per stream, so the
        // pipelined total must undercut eager read-then-move.
        let cfg = StagerConfig {
            chunk_bytes: 8 << 20,
            ..config()
        };
        let per_part: u64 = 471_000_000 / 16;
        let plan = SplitPlan {
            parts: 16,
            ranges: (0..16u64).map(|i| (i * 1000, 1000, per_part)).collect(),
        };
        let chunk_records: Vec<usize> = vec![1000 * (8 << 20) / per_part as usize; 16];
        let stager = Stager::new(cfg, &StageFaultPlan::default());
        let (read, transfer, pipelined, ratio) = stager.simulate(&plan, &chunk_records);
        assert!((read - 46.0).abs() < 1.0, "read {read}");
        assert!(transfer > 4.0 && transfer < 70.0, "transfer {transfer}");
        assert!(pipelined < read + transfer, "pipelined {pipelined}");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
    }
}

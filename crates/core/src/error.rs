//! Framework error type.

use std::fmt;

use crate::session::SessionStatus;

/// Errors surfaced to the client layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Authentication / authorization failed.
    Auth(ipa_simgrid::AuthError),
    /// Catalog problem (browse, search, unknown dataset).
    Catalog(String),
    /// The locator could not resolve a dataset id.
    NotLocatable(String),
    /// Dataset staging failed.
    Staging(String),
    /// A part's chunked transfer kept failing until its retry budget was
    /// exhausted; the stage operation was aborted and the session keeps
    /// its previous dataset (no epoch bump happened).
    StagingFailure {
        /// The part whose transfers failed terminally.
        part: u64,
        /// Failed transfer attempts made (retry budget + 1).
        attempts: u32,
    },
    /// Analysis code failed to compile or load.
    Code(String),
    /// An operation needs a dataset selected first.
    NoDataset,
    /// An operation needs analysis code loaded first.
    NoCode,
    /// The session has been closed.
    SessionClosed,
    /// All engines have failed; the session cannot make progress.
    AllEnginesFailed,
    /// An engine channel broke unexpectedly.
    EngineGone(usize),
    /// Result merging failed (incompatible partial results).
    Merge(String),
    /// The startup deadline passed before every engine reported ready.
    /// Distinct from [`CoreError::EngineGone`]: the engines may simply be
    /// slow, not dead.
    StartupTimeout {
        /// Engines that reported ready before the deadline.
        ready: usize,
        /// Engines the session expected.
        expected: usize,
    },
    /// A wait deadline passed before an expected event arrived. Carries
    /// the last status snapshot when one is available (e.g. waiting on a
    /// run to finish) so the caller can see how far the run got; `None`
    /// when a single engine event simply never came.
    Timeout(Option<SessionStatus>),
    /// The session journal could not be read or replayed during recovery.
    Journal(String),
    /// A dataset was published under an id already bound to a *different*
    /// descriptor; silent replacement would corrupt sessions (and cached
    /// splits) staged from the old contents.
    DatasetConflict {
        /// The contested dataset id.
        id: String,
    },
    /// Creating the session would push the VO's aggregate leased engines
    /// past its configured quota
    /// ([`VoPolicy::max_total_engines`](ipa_simgrid::VoPolicy)). The
    /// request is rejected whole — retry with fewer engines or after a
    /// sibling session closes.
    QuotaExceeded {
        /// The VO whose quota would be exceeded.
        vo: String,
        /// The VO's aggregate engine limit.
        limit: usize,
    },
    /// The shared engine pool could not lease a single engine before the
    /// lease timeout: every engine is held by sessions within their
    /// fair-share entitlement.
    PoolExhausted {
        /// Engines the session asked for.
        requested: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Auth(e) => write!(f, "authentication failed: {e}"),
            CoreError::Catalog(m) => write!(f, "catalog error: {m}"),
            CoreError::NotLocatable(id) => write!(f, "dataset '{id}' cannot be located"),
            CoreError::Staging(m) => write!(f, "dataset staging failed: {m}"),
            CoreError::StagingFailure { part, attempts } => write!(
                f,
                "staging part {part} failed terminally after {attempts} attempts"
            ),
            CoreError::Code(m) => write!(f, "analysis code error: {m}"),
            CoreError::NoDataset => write!(f, "no dataset selected in this session"),
            CoreError::NoCode => write!(f, "no analysis code loaded in this session"),
            CoreError::SessionClosed => write!(f, "session is closed"),
            CoreError::AllEnginesFailed => write!(f, "all analysis engines have failed"),
            CoreError::EngineGone(id) => write!(f, "engine {id} disappeared"),
            CoreError::Merge(m) => write!(f, "result merge failed: {m}"),
            CoreError::StartupTimeout { ready, expected } => write!(
                f,
                "timed out waiting for engines to start: {ready} of {expected} ready"
            ),
            CoreError::Timeout(Some(s)) => write!(
                f,
                "timed out in state {:?} after {} of {} records",
                s.state, s.records_processed, s.records_total
            ),
            CoreError::Timeout(None) => write!(f, "timed out waiting for an engine event"),
            CoreError::Journal(m) => write!(f, "journal error: {m}"),
            CoreError::DatasetConflict { id } => write!(
                f,
                "dataset '{id}' already published with a different descriptor"
            ),
            CoreError::QuotaExceeded { vo, limit } => write!(
                f,
                "VO '{vo}' engine quota exceeded: at most {limit} engines may be leased"
            ),
            CoreError::PoolExhausted { requested } => write!(
                f,
                "engine pool exhausted: could not lease any of {requested} requested engines"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ipa_simgrid::AuthError> for CoreError {
    fn from(e: ipa_simgrid::AuthError) -> Self {
        CoreError::Auth(e)
    }
}

impl From<ipa_catalog::CatalogError> for CoreError {
    fn from(e: ipa_catalog::CatalogError) -> Self {
        CoreError::Catalog(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = ipa_simgrid::AuthError::Expired.into();
        assert!(e.to_string().contains("expired"));
        let e: CoreError = ipa_catalog::CatalogError::NoSuchDataset("x".into()).into();
        assert!(e.to_string().contains("catalog"));
        assert!(CoreError::NoDataset.to_string().contains("no dataset"));
        let e = CoreError::StagingFailure {
            part: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("part 3"));
        assert!(e.to_string().contains("4 attempts"));
        let e = CoreError::StartupTimeout {
            ready: 1,
            expected: 4,
        };
        assert!(e.to_string().contains("1 of 4"));
        let e = CoreError::Journal("bad record".into());
        assert!(e.to_string().contains("journal"));
        let e = CoreError::DatasetConflict { id: "d1".into() };
        assert!(e.to_string().contains("d1"));
        assert!(e.to_string().contains("different descriptor"));
        let e = CoreError::QuotaExceeded {
            vo: "ilc".into(),
            limit: 8,
        };
        assert!(e.to_string().contains("ilc"));
        assert!(e.to_string().contains("at most 8"));
        let e = CoreError::PoolExhausted { requested: 3 };
        assert!(e.to_string().contains("3 requested"));
    }
}

//! The web-services gateway: the manager's network boundary.
//!
//! The paper's client talks to the manager node through SOAP web services
//! hosted in a Globus container (Figure 2). This module is the working
//! substitute: a newline-delimited JSON request/response protocol over TCP.
//! Sessions created over the wire live in a server-side session table keyed
//! by session id — the same "stateless service + WSRF resource" pattern the
//! paper describes (§3.2): the *protocol* is stateless, the *resource* (the
//! session) is addressed by id on every call.
//!
//! The server is a small worker-pool reactor, not thread-per-connection: one
//! accept thread hands nonblocking sockets round-robin to a fixed set of
//! reactor workers ([`crate::IpaConfig::gateway_workers`]), and each worker
//! multiplexes all of its connections in a readiness loop — flush pending
//! output, read what the socket has, dispatch every complete line. The
//! gateway's thread count is therefore a constant of the configuration,
//! independent of how many clients connect (or how fast they churn), which
//! is what lets one manager front thousands of interactive clients.
//! Dispatch itself stays synchronous: a slow request (session creation
//! waits for engine-ready signals) delays only its worker's connections,
//! never grows the thread count.
//!
//! Security carries over unchanged: `CreateSession` ships the caller's
//! [`GridProxy`] and the manager authenticates/authorizes it before any
//! session resource exists; every other request must name a valid session.
//!
//! ```text
//! client                         gateway (manager node)
//!   │  {"CreateSession":{...}}\n   │
//!   ├──────────────────────────────▶  authorize proxy, lease engines
//!   │  {"SessionCreated":{...}}\n  │
//!   ◀──────────────────────────────┤
//!   │  {"Poll":{"session":1}}\n    │
//!   ├──────────────────────────────▶  drain events, recover failures
//!   │  {"Status":{...}}\n          │
//!   ◀──────────────────────────────┤
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver};
use ipa_aida::Tree;
use ipa_catalog::{CatalogEntry, ListItem};
use ipa_dataset::DatasetId;
use ipa_simgrid::GridProxy;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::analyzer::AnalysisCode;
use crate::error::CoreError;
use crate::manager::ManagerNode;
use crate::pool::PoolStats;
use crate::registry::SessionInfo;
use crate::session::{FailureRecord, Session, SessionStatus};

/// A request on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WsRequest {
    /// Browse a catalog folder.
    Browse {
        /// Folder path.
        folder: String,
    },
    /// Search the catalog.
    Search {
        /// Query text.
        query: String,
    },
    /// Render the catalog tree.
    CatalogTree,
    /// Authenticate and create a session.
    CreateSession {
        /// The caller's delegated credential.
        proxy: GridProxy,
        /// Simulated time used for proxy validity.
        now: f64,
        /// Engines requested (0 = site default).
        engines: usize,
    },
    /// Resume a journaled session after a manager restart: replay its
    /// write-ahead log, spawn fresh engines, and re-register it in the
    /// session table under the same id. Holding the session id is the
    /// capability (the WSRF endpoint-reference pattern) — the subject was
    /// authenticated when the journal was first written. Answers
    /// [`WsResponse::SessionCreated`]; a session already live in the table
    /// is returned as-is rather than recovered twice.
    Resume {
        /// Session id to recover from the journal.
        session: u64,
    },
    /// Stage a dataset into a session.
    SelectDataset {
        /// Session id.
        session: u64,
        /// Dataset id.
        id: String,
    },
    /// Ship IPAScript source.
    LoadScript {
        /// Session id.
        session: u64,
        /// Script source text.
        source: String,
    },
    /// Select a registered native analyzer.
    LoadNative {
        /// Session id.
        session: u64,
        /// Registered analyzer name.
        name: String,
    },
    /// Start / resume the run.
    Run {
        /// Session id.
        session: u64,
    },
    /// Run at most `n` records per engine.
    RunEvents {
        /// Session id.
        session: u64,
        /// Per-engine record budget.
        n: usize,
    },
    /// Pause the run.
    Pause {
        /// Session id.
        session: u64,
    },
    /// Stop the run.
    Stop {
        /// Session id.
        session: u64,
    },
    /// Rewind to record zero.
    Rewind {
        /// Session id.
        session: u64,
    },
    /// Drain events and fetch a status snapshot.
    Poll {
        /// Session id.
        session: u64,
    },
    /// Fetch the merged result tree.
    ///
    /// With `if_newer_than: Some(v)` the gateway answers
    /// [`WsResponse::Unchanged`] (a constant-size message, no tree
    /// serialization) when the merged results are still at version `v` —
    /// the interactive polling loop's fast path.
    Results {
        /// Session id.
        session: u64,
        /// Skip the tree payload if the result version still equals this.
        #[serde(default)]
        if_newer_than: Option<u64>,
    },
    /// Fetch the session's engine-failure records.
    Failures {
        /// Session id.
        session: u64,
    },
    /// Fetch scheduler statistics (parts queued/stolen/speculated and
    /// per-engine throughput).
    SchedStats {
        /// Session id.
        session: u64,
    },
    /// Fetch staging-plane statistics (parts/bytes/chunks moved,
    /// split-cache hits, transfer retries, phase timings).
    StagingStats {
        /// Session id.
        session: u64,
    },
    /// Snapshot the manager's session directory (all tenants, active and
    /// closed) — the multi-tenant operator view.
    Sessions,
    /// Fetch shared engine-pool statistics (all zeros with the pool off).
    PoolStats,
    /// Close the session and shut its engines down.
    CloseSession {
        /// Session id.
        session: u64,
    },
}

/// A response on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WsResponse {
    /// Operation succeeded with no payload.
    Ok,
    /// Browse results.
    Items(Vec<ListItem>),
    /// Search results.
    Entries(Vec<CatalogEntry>),
    /// Rendered text.
    Text(String),
    /// Session created.
    SessionCreated {
        /// Assigned session id.
        session: u64,
        /// Engines granted.
        engines: usize,
    },
    /// Poll snapshot.
    Status(SessionStatus),
    /// Merged results, stamped with the snapshot version the client
    /// should echo back in `if_newer_than` on its next poll.
    Tree {
        /// Result-plane snapshot version of `tree`.
        version: u64,
        /// The merged result tree.
        tree: Tree,
    },
    /// Results are still at the version the client already holds
    /// (`if_newer_than` matched) — no tree payload.
    Unchanged {
        /// The current (unchanged) result version.
        version: u64,
    },
    /// Engine-failure records.
    Failures(Vec<FailureRecord>),
    /// Scheduler statistics snapshot.
    Sched(crate::sched::SchedStats),
    /// Staging-plane statistics snapshot.
    Staging(crate::staging::StagingStats),
    /// The manager's session directory.
    SessionTable(Vec<SessionInfo>),
    /// Engine-pool statistics snapshot.
    Pool(PoolStats),
    /// The request failed.
    Error(String),
}

/// Server-side session table.
type Sessions = Arc<Mutex<HashMap<u64, Session>>>;

/// The gateway server. Owns a listener; serves until shut down.
pub struct WsGateway {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    sessions: Sessions,
}

impl WsGateway {
    /// Bind and start serving `manager` on `addr` (use port 0 for an
    /// ephemeral port; the bound address is available via
    /// [`WsGateway::addr`]). Spawns one accept thread plus
    /// [`crate::IpaConfig::gateway_workers`] reactor workers; every
    /// connection is multiplexed onto that fixed pool, so the gateway's
    /// thread count does not depend on the number of clients.
    pub fn serve(manager: Arc<ManagerNode>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Sessions = Arc::new(Mutex::new(HashMap::new()));
        let workers = manager.config.gateway_workers.max(1);

        let mut threads = Vec::with_capacity(workers + 1);
        let mut slots = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = unbounded::<TcpStream>();
            let manager = manager.clone();
            let sessions = sessions.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ipa-ws-worker-{i}"))
                    .spawn(move || worker_loop(rx, manager, sessions, stop))?,
            );
            slots.push(tx);
        }

        let stop2 = stop.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ipa-ws-accept".into())
                .spawn(move || {
                    let mut next = 0usize;
                    while !stop2.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Round-robin over the worker pool; the
                                // socket goes nonblocking so a reactor pass
                                // never stalls on one peer.
                                if stream.set_nonblocking(true).is_ok() {
                                    let _ = slots[next % slots.len()].send(stream);
                                    next = next.wrapping_add(1);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                    }
                    // Dropping the distribution channels unparks any worker
                    // waiting for its first connection.
                    drop(slots);
                })?,
        );
        Ok(WsGateway {
            addr: local,
            stop,
            threads,
            sessions,
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, join the accept thread and every reactor worker,
    /// and close any sessions left behind by disconnected clients.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for (_, mut s) in self.sessions.lock().drain() {
            s.close();
        }
    }
}

impl Drop for WsGateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One multiplexed connection: the socket plus its partial-request and
/// pending-response buffers. All progress happens in [`Conn::pump`].
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet terminated by a newline.
    buf: Vec<u8>,
    /// Serialized responses awaiting room in the socket's send buffer.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            closed: false,
        }
    }

    /// One readiness pass: flush pending output, read everything the
    /// socket has, dispatch every complete line. Returns true if any byte
    /// moved (the worker uses that to decide whether to sleep).
    fn pump(&mut self, scratch: &mut [u8], manager: &ManagerNode, sessions: &Sessions) -> bool {
        if self.closed {
            return false;
        }
        let mut active = self.flush();
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    // Peer closed; any complete lines already buffered are
                    // still dispatched below (e.g. a final CloseSession).
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    active = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        // A request split across passes keeps its partial tail in `buf`.
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let response = match serde_json::from_str::<WsRequest>(text) {
                Ok(req) => dispatch(req, manager, sessions),
                Err(e) => WsResponse::Error(format!("malformed request: {e}")),
            };
            let start = self.out.len();
            if serde_json::to_writer(&mut self.out, &response).is_err() {
                // A response that fails to serialize must not kill the
                // connection: answer with a hand-built error instead.
                self.out.truncate(start);
                self.out
                    .extend_from_slice(b"{\"Error\":\"response serialization failed\"}");
            }
            self.out.push(b'\n');
            active = true;
        }
        self.flush() || active
    }

    /// Push pending output into the socket; true if any byte was written.
    fn flush(&mut self) -> bool {
        let mut wrote = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    wrote = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
        wrote
    }
}

/// Reactor worker: adopts connections from the accept thread and pumps
/// them all each pass. An idle pass sleeps briefly (or parks on the accept
/// channel when it has no connections at all), so an idle gateway costs
/// near-zero CPU while a loaded one runs back-to-back passes.
fn worker_loop(
    incoming: Receiver<TcpStream>,
    manager: Arc<ManagerNode>,
    sessions: Sessions,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        while let Ok(stream) = incoming.try_recv() {
            conns.push(Conn::new(stream));
        }
        let mut active = false;
        for conn in conns.iter_mut() {
            active |= conn.pump(&mut scratch, &manager, &sessions);
        }
        if conns.iter().any(|c| c.closed) {
            conns.retain(|c| !c.closed);
        }
        if !active {
            if conns.is_empty() {
                // Park until a connection arrives (or shutdown; the timeout
                // bounds how long the stop flag goes unchecked).
                if let Ok(stream) = incoming.recv_timeout(std::time::Duration::from_millis(25)) {
                    conns.push(Conn::new(stream));
                }
            } else {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
    }
}

fn with_session<T>(
    sessions: &Sessions,
    id: u64,
    f: impl FnOnce(&mut Session) -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    let mut table = sessions.lock();
    let session = table.get_mut(&id).ok_or(CoreError::SessionClosed)?;
    f(session)
}

fn dispatch(req: WsRequest, manager: &ManagerNode, sessions: &Sessions) -> WsResponse {
    let result: Result<WsResponse, CoreError> = (|| {
        Ok(match req {
            WsRequest::Browse { folder } => WsResponse::Items(manager.browse(&folder)?),
            WsRequest::Search { query } => WsResponse::Entries(manager.search(&query)?),
            WsRequest::CatalogTree => WsResponse::Text(manager.catalog_tree()),
            WsRequest::CreateSession {
                proxy,
                now,
                engines,
            } => {
                let session = manager.create_session(&proxy, now, engines)?;
                let id = session.id();
                let granted = session.engines();
                sessions.lock().insert(id, session);
                WsResponse::SessionCreated {
                    session: id,
                    engines: granted,
                }
            }
            WsRequest::Resume { session } => {
                let mut table = sessions.lock();
                let granted = match table.get(&session) {
                    // Already live (e.g. another connection resumed it):
                    // answering idempotently beats recovering a duplicate
                    // whose engines would fight over the same journal.
                    Some(live) => live.engines(),
                    None => {
                        let recovered = manager.recover_session(session)?;
                        let granted = recovered.engines();
                        table.insert(session, recovered);
                        granted
                    }
                };
                WsResponse::SessionCreated {
                    session,
                    engines: granted,
                }
            }
            WsRequest::SelectDataset { session, id } => {
                with_session(sessions, session, |s| {
                    s.select_dataset(&DatasetId::new(id.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::LoadScript { session, source } => {
                with_session(sessions, session, |s| {
                    s.load_code(AnalysisCode::Script(source.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::LoadNative { session, name } => {
                with_session(sessions, session, |s| {
                    s.load_code(AnalysisCode::Native(name.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::Run { session } => {
                with_session(sessions, session, |s| s.run())?;
                WsResponse::Ok
            }
            WsRequest::RunEvents { session, n } => {
                with_session(sessions, session, |s| s.run_events(n))?;
                WsResponse::Ok
            }
            WsRequest::Pause { session } => {
                with_session(sessions, session, |s| s.pause())?;
                WsResponse::Ok
            }
            WsRequest::Stop { session } => {
                with_session(sessions, session, |s| s.stop())?;
                WsResponse::Ok
            }
            WsRequest::Rewind { session } => {
                with_session(sessions, session, |s| s.rewind())?;
                WsResponse::Ok
            }
            WsRequest::Poll { session } => {
                WsResponse::Status(with_session(sessions, session, |s| s.poll())?)
            }
            WsRequest::Results {
                session,
                if_newer_than,
            } => {
                // Fold any pending dirty parts first (a cache hit when
                // nothing changed), then compare versions — so "unchanged"
                // answers are cheap but never stale.
                let (version, tree) = with_session(sessions, session, |s| {
                    let tree = s.results()?;
                    Ok((s.result_version(), tree))
                })?;
                if if_newer_than == Some(version) {
                    WsResponse::Unchanged { version }
                } else {
                    WsResponse::Tree {
                        version,
                        tree: (*tree).clone(),
                    }
                }
            }
            WsRequest::Failures { session } => {
                WsResponse::Failures(with_session(sessions, session, |s| {
                    Ok(s.failures().to_vec())
                })?)
            }
            WsRequest::SchedStats { session } => {
                WsResponse::Sched(with_session(sessions, session, |s| Ok(s.sched_stats()))?)
            }
            WsRequest::StagingStats { session } => {
                WsResponse::Staging(with_session(sessions, session, |s| Ok(s.staging_stats()))?)
            }
            WsRequest::Sessions => WsResponse::SessionTable(manager.worker_registry().sessions()),
            WsRequest::PoolStats => WsResponse::Pool(manager.pool_stats()),
            WsRequest::CloseSession { session } => match sessions.lock().remove(&session) {
                Some(mut s) => {
                    s.close();
                    WsResponse::Ok
                }
                None => return Err(CoreError::SessionClosed),
            },
        })
    })();
    result.unwrap_or_else(|e| WsResponse::Error(e.to_string()))
}

/// A synchronous client for the gateway protocol.
pub struct WsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WsClient {
    /// Connect to a gateway.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(WsClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &WsRequest) -> std::io::Result<WsResponse> {
        let mut payload = serde_json::to_vec(req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        payload.push(b'\n');
        self.writer.write_all(&payload)?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Call and convert `Error` responses into `CoreError::Catalog`-style
    /// strings (ergonomic wrapper for tests and tools).
    pub fn call_ok(&mut self, req: &WsRequest) -> Result<WsResponse, String> {
        match self.call(req) {
            Ok(WsResponse::Error(e)) => Err(e),
            Ok(other) => Ok(other),
            Err(e) => Err(format!("transport: {e}")),
        }
    }
}

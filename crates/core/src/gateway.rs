//! The web-services gateway: the manager's network boundary.
//!
//! The paper's client talks to the manager node through SOAP web services
//! hosted in a Globus container (Figure 2). This module is the working
//! substitute: a newline-delimited JSON request/response protocol over TCP.
//! Each connection is served by its own thread; sessions created over the
//! wire live in a server-side session table keyed by session id — the same
//! "stateless service + WSRF resource" pattern the paper describes (§3.2):
//! the *protocol* is stateless, the *resource* (the session) is addressed
//! by id on every call.
//!
//! Security carries over unchanged: `CreateSession` ships the caller's
//! [`GridProxy`] and the manager authenticates/authorizes it before any
//! session resource exists; every other request must name a valid session.
//!
//! ```text
//! client                         gateway (manager node)
//!   │  {"CreateSession":{...}}\n   │
//!   ├──────────────────────────────▶  authorize proxy, spawn engines
//!   │  {"SessionCreated":{...}}\n  │
//!   ◀──────────────────────────────┤
//!   │  {"Poll":{"session":1}}\n    │
//!   ├──────────────────────────────▶  drain events, recover failures
//!   │  {"Status":{...}}\n          │
//!   ◀──────────────────────────────┤
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ipa_aida::Tree;
use ipa_catalog::{CatalogEntry, ListItem};
use ipa_dataset::DatasetId;
use ipa_simgrid::GridProxy;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::analyzer::AnalysisCode;
use crate::error::CoreError;
use crate::manager::ManagerNode;
use crate::session::{FailureRecord, Session, SessionStatus};

/// A request on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WsRequest {
    /// Browse a catalog folder.
    Browse {
        /// Folder path.
        folder: String,
    },
    /// Search the catalog.
    Search {
        /// Query text.
        query: String,
    },
    /// Render the catalog tree.
    CatalogTree,
    /// Authenticate and create a session.
    CreateSession {
        /// The caller's delegated credential.
        proxy: GridProxy,
        /// Simulated time used for proxy validity.
        now: f64,
        /// Engines requested (0 = site default).
        engines: usize,
    },
    /// Resume a journaled session after a manager restart: replay its
    /// write-ahead log, spawn fresh engines, and re-register it in the
    /// session table under the same id. Holding the session id is the
    /// capability (the WSRF endpoint-reference pattern) — the subject was
    /// authenticated when the journal was first written. Answers
    /// [`WsResponse::SessionCreated`]; a session already live in the table
    /// is returned as-is rather than recovered twice.
    Resume {
        /// Session id to recover from the journal.
        session: u64,
    },
    /// Stage a dataset into a session.
    SelectDataset {
        /// Session id.
        session: u64,
        /// Dataset id.
        id: String,
    },
    /// Ship IPAScript source.
    LoadScript {
        /// Session id.
        session: u64,
        /// Script source text.
        source: String,
    },
    /// Select a registered native analyzer.
    LoadNative {
        /// Session id.
        session: u64,
        /// Registered analyzer name.
        name: String,
    },
    /// Start / resume the run.
    Run {
        /// Session id.
        session: u64,
    },
    /// Run at most `n` records per engine.
    RunEvents {
        /// Session id.
        session: u64,
        /// Per-engine record budget.
        n: usize,
    },
    /// Pause the run.
    Pause {
        /// Session id.
        session: u64,
    },
    /// Stop the run.
    Stop {
        /// Session id.
        session: u64,
    },
    /// Rewind to record zero.
    Rewind {
        /// Session id.
        session: u64,
    },
    /// Drain events and fetch a status snapshot.
    Poll {
        /// Session id.
        session: u64,
    },
    /// Fetch the merged result tree.
    ///
    /// With `if_newer_than: Some(v)` the gateway answers
    /// [`WsResponse::Unchanged`] (a constant-size message, no tree
    /// serialization) when the merged results are still at version `v` —
    /// the interactive polling loop's fast path.
    Results {
        /// Session id.
        session: u64,
        /// Skip the tree payload if the result version still equals this.
        #[serde(default)]
        if_newer_than: Option<u64>,
    },
    /// Fetch the session's engine-failure records.
    Failures {
        /// Session id.
        session: u64,
    },
    /// Fetch scheduler statistics (parts queued/stolen/speculated and
    /// per-engine throughput).
    SchedStats {
        /// Session id.
        session: u64,
    },
    /// Fetch staging-plane statistics (parts/bytes/chunks moved,
    /// split-cache hits, transfer retries, phase timings).
    StagingStats {
        /// Session id.
        session: u64,
    },
    /// Close the session and shut its engines down.
    CloseSession {
        /// Session id.
        session: u64,
    },
}

/// A response on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WsResponse {
    /// Operation succeeded with no payload.
    Ok,
    /// Browse results.
    Items(Vec<ListItem>),
    /// Search results.
    Entries(Vec<CatalogEntry>),
    /// Rendered text.
    Text(String),
    /// Session created.
    SessionCreated {
        /// Assigned session id.
        session: u64,
        /// Engines granted.
        engines: usize,
    },
    /// Poll snapshot.
    Status(SessionStatus),
    /// Merged results, stamped with the snapshot version the client
    /// should echo back in `if_newer_than` on its next poll.
    Tree {
        /// Result-plane snapshot version of `tree`.
        version: u64,
        /// The merged result tree.
        tree: Tree,
    },
    /// Results are still at the version the client already holds
    /// (`if_newer_than` matched) — no tree payload.
    Unchanged {
        /// The current (unchanged) result version.
        version: u64,
    },
    /// Engine-failure records.
    Failures(Vec<FailureRecord>),
    /// Scheduler statistics snapshot.
    Sched(crate::sched::SchedStats),
    /// Staging-plane statistics snapshot.
    Staging(crate::staging::StagingStats),
    /// The request failed.
    Error(String),
}

/// Server-side session table.
type Sessions = Arc<Mutex<HashMap<u64, Session>>>;

/// The gateway server. Owns a listener; serves until shut down.
pub struct WsGateway {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl WsGateway {
    /// Bind and start serving `manager` on `addr` (use port 0 for an
    /// ephemeral port; the bound address is available via
    /// [`WsGateway::addr`]). Each connection gets a handler thread.
    pub fn serve(manager: Arc<ManagerNode>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Sessions = Arc::new(Mutex::new(HashMap::new()));

        let stop2 = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ipa-ws-gateway".into())
            .spawn(move || {
                // Nonblocking accept so the stop flag is honoured promptly.
                listener.set_nonblocking(true).ok();
                let mut handlers = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let manager = manager.clone();
                            let sessions = sessions.clone();
                            let stop = stop2.clone();
                            handlers.push(std::thread::spawn(move || {
                                let _ = handle_connection(stream, manager, sessions, stop);
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
                // Close any sessions left behind by disconnected clients.
                for (_, mut s) in sessions.lock().drain() {
                    s.close();
                }
            })?;
        Ok(WsGateway {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server (open connections finish their
    /// current request; their sessions are closed).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WsGateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn with_session<T>(
    sessions: &Sessions,
    id: u64,
    f: impl FnOnce(&mut Session) -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    let mut table = sessions.lock();
    let session = table.get_mut(&id).ok_or(CoreError::SessionClosed)?;
    f(session)
}

fn dispatch(req: WsRequest, manager: &ManagerNode, sessions: &Sessions) -> WsResponse {
    let result: Result<WsResponse, CoreError> = (|| {
        Ok(match req {
            WsRequest::Browse { folder } => WsResponse::Items(manager.browse(&folder)?),
            WsRequest::Search { query } => WsResponse::Entries(manager.search(&query)?),
            WsRequest::CatalogTree => WsResponse::Text(manager.catalog_tree()),
            WsRequest::CreateSession {
                proxy,
                now,
                engines,
            } => {
                let session = manager.create_session(&proxy, now, engines)?;
                let id = session.id();
                let granted = session.engines();
                sessions.lock().insert(id, session);
                WsResponse::SessionCreated {
                    session: id,
                    engines: granted,
                }
            }
            WsRequest::Resume { session } => {
                let mut table = sessions.lock();
                let granted = match table.get(&session) {
                    // Already live (e.g. another connection resumed it):
                    // answering idempotently beats recovering a duplicate
                    // whose engines would fight over the same journal.
                    Some(live) => live.engines(),
                    None => {
                        let recovered = manager.recover_session(session)?;
                        let granted = recovered.engines();
                        table.insert(session, recovered);
                        granted
                    }
                };
                WsResponse::SessionCreated {
                    session,
                    engines: granted,
                }
            }
            WsRequest::SelectDataset { session, id } => {
                with_session(sessions, session, |s| {
                    s.select_dataset(&DatasetId::new(id.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::LoadScript { session, source } => {
                with_session(sessions, session, |s| {
                    s.load_code(AnalysisCode::Script(source.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::LoadNative { session, name } => {
                with_session(sessions, session, |s| {
                    s.load_code(AnalysisCode::Native(name.clone()))
                })?;
                WsResponse::Ok
            }
            WsRequest::Run { session } => {
                with_session(sessions, session, |s| s.run())?;
                WsResponse::Ok
            }
            WsRequest::RunEvents { session, n } => {
                with_session(sessions, session, |s| s.run_events(n))?;
                WsResponse::Ok
            }
            WsRequest::Pause { session } => {
                with_session(sessions, session, |s| s.pause())?;
                WsResponse::Ok
            }
            WsRequest::Stop { session } => {
                with_session(sessions, session, |s| s.stop())?;
                WsResponse::Ok
            }
            WsRequest::Rewind { session } => {
                with_session(sessions, session, |s| s.rewind())?;
                WsResponse::Ok
            }
            WsRequest::Poll { session } => {
                WsResponse::Status(with_session(sessions, session, |s| s.poll())?)
            }
            WsRequest::Results {
                session,
                if_newer_than,
            } => {
                // Fold any pending dirty parts first (a cache hit when
                // nothing changed), then compare versions — so "unchanged"
                // answers are cheap but never stale.
                let (version, tree) = with_session(sessions, session, |s| {
                    let tree = s.results()?;
                    Ok((s.result_version(), tree))
                })?;
                if if_newer_than == Some(version) {
                    WsResponse::Unchanged { version }
                } else {
                    WsResponse::Tree {
                        version,
                        tree: (*tree).clone(),
                    }
                }
            }
            WsRequest::Failures { session } => {
                WsResponse::Failures(with_session(sessions, session, |s| {
                    Ok(s.failures().to_vec())
                })?)
            }
            WsRequest::SchedStats { session } => {
                WsResponse::Sched(with_session(sessions, session, |s| Ok(s.sched_stats()))?)
            }
            WsRequest::StagingStats { session } => {
                WsResponse::Staging(with_session(sessions, session, |s| Ok(s.staging_stats()))?)
            }
            WsRequest::CloseSession { session } => match sessions.lock().remove(&session) {
                Some(mut s) => {
                    s.close();
                    WsResponse::Ok
                }
                None => return Err(CoreError::SessionClosed),
            },
        })
    })();
    result.unwrap_or_else(|e| WsResponse::Error(e.to_string()))
}

fn handle_connection(
    stream: TcpStream,
    manager: Arc<ManagerNode>,
    sessions: Sessions,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    // Buffer writes so a large result tree goes out in big TCP segments
    // instead of one syscall per serializer fragment; flushed per response
    // because the protocol is request/response interactive.
    let mut writer = BufWriter::new(stream.try_clone()?);
    // A short read timeout lets the handler notice gateway shutdown even
    // while a client keeps its connection open but idle. `read_line`
    // accumulates partial data across timeouts, so requests that straddle
    // a timeout boundary are still assembled correctly.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Serialization buffer, reused across responses so steady-state
    // polling does not re-allocate per reply.
    let mut payload: Vec<u8> = Vec::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed the connection
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = match serde_json::from_str::<WsRequest>(line.trim_end()) {
                        Ok(req) => dispatch(req, &manager, &sessions),
                        Err(e) => WsResponse::Error(format!("malformed request: {e}")),
                    };
                    payload.clear();
                    if serde_json::to_writer(&mut payload, &response).is_err() {
                        // A response that fails to serialize must not kill
                        // the connection (or panic the handler): answer
                        // with a hand-built error message instead.
                        payload.clear();
                        payload.extend_from_slice(b"{\"Error\":\"response serialization failed\"}");
                    }
                    payload.push(b'\n');
                    writer.write_all(&payload)?;
                    writer.flush()?;
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// A synchronous client for the gateway protocol.
pub struct WsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WsClient {
    /// Connect to a gateway.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(WsClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &WsRequest) -> std::io::Result<WsResponse> {
        let mut payload = serde_json::to_vec(req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        payload.push(b'\n');
        self.writer.write_all(&payload)?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Call and convert `Error` responses into `CoreError::Catalog`-style
    /// strings (ergonomic wrapper for tests and tools).
    pub fn call_ok(&mut self, req: &WsRequest) -> Result<WsResponse, String> {
        match self.call(req) {
            Ok(WsResponse::Error(e)) => Err(e),
            Ok(other) => Ok(other),
            Err(e) => Err(format!("transport: {e}")),
        }
    }
}

//! The storage element: where datasets physically live.

use std::collections::HashMap;
use std::sync::Arc;

use ipa_dataset::{Dataset, DatasetId};
use parking_lot::RwLock;

use crate::error::CoreError;

/// An in-memory storage element holding complete datasets, shared between
/// the manager services. (A real deployment would be a tape/disk SE behind
/// GridFTP; the locator abstracts that away from the rest of the system.)
#[derive(Clone, Default)]
pub struct DatasetStore {
    inner: Arc<RwLock<HashMap<DatasetId, Arc<Dataset>>>>,
}

impl DatasetStore {
    /// New empty store.
    pub fn new() -> Self {
        DatasetStore::default()
    }

    /// Add a dataset; returns the shared handle. Re-publishing the *same*
    /// dataset (identical descriptor) is idempotent and returns the stored
    /// handle, but publishing a different descriptor under an existing id
    /// is refused with [`CoreError::DatasetConflict`] — silently replacing
    /// contents would desynchronize sessions and cached splits staged from
    /// the old version. Replace explicitly via [`DatasetStore::remove`].
    pub fn put(&self, ds: Dataset) -> Result<Arc<Dataset>, CoreError> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.get(&ds.descriptor.id) {
            if existing.descriptor == ds.descriptor {
                return Ok(existing.clone());
            }
            return Err(CoreError::DatasetConflict {
                id: ds.descriptor.id.to_string(),
            });
        }
        let arc = Arc::new(ds);
        inner.insert(arc.descriptor.id.clone(), arc.clone());
        Ok(arc)
    }

    /// Fetch a dataset by id.
    pub fn get(&self, id: &DatasetId) -> Option<Arc<Dataset>> {
        self.inner.read().get(id).cloned()
    }

    /// Remove a dataset.
    pub fn remove(&self, id: &DatasetId) -> Option<Arc<Dataset>> {
        self.inner.write().remove(id)
    }

    /// Number of stored datasets.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All ids, sorted.
    pub fn ids(&self) -> Vec<DatasetId> {
        let mut v: Vec<DatasetId> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{AnyRecord, CollisionEvent};

    fn ds(id: &str) -> Dataset {
        Dataset::from_records(
            id,
            id,
            vec![AnyRecord::Event(CollisionEvent {
                event_id: 0,
                run: 0,
                sqrt_s: 500.0,
                is_signal: false,
                particles: vec![],
            })],
        )
    }

    #[test]
    fn put_get_remove() {
        let store = DatasetStore::new();
        assert!(store.is_empty());
        store.put(ds("a")).unwrap();
        store.put(ds("b")).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(&DatasetId::new("a")).is_some());
        assert!(store.get(&DatasetId::new("z")).is_none());
        assert_eq!(store.ids(), vec![DatasetId::new("a"), DatasetId::new("b")]);
        store.remove(&DatasetId::new("a"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_is_shared_between_clones() {
        let store = DatasetStore::new();
        let clone = store.clone();
        store.put(ds("x")).unwrap();
        assert!(clone.get(&DatasetId::new("x")).is_some());
    }

    #[test]
    fn republish_is_idempotent_but_conflicts_are_refused() {
        let store = DatasetStore::new();
        let first = store.put(ds("a")).unwrap();
        // Same descriptor again: fine, and the original handle is kept.
        let again = store.put(ds("a")).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(store.len(), 1);
        // Same id, different descriptor: refused, store unchanged.
        let mut conflicting = ds("a");
        conflicting.descriptor.name = "other name".into();
        match store.put(conflicting) {
            Err(CoreError::DatasetConflict { id }) => assert_eq!(id, "a"),
            other => panic!("expected DatasetConflict, got {other:?}"),
        }
        assert!(Arc::ptr_eq(
            &store.get(&DatasetId::new("a")).unwrap(),
            &first
        ));
    }
}

//! The storage element: where datasets physically live.

use std::collections::HashMap;
use std::sync::Arc;

use ipa_dataset::{Dataset, DatasetId};
use parking_lot::RwLock;

/// An in-memory storage element holding complete datasets, shared between
/// the manager services. (A real deployment would be a tape/disk SE behind
/// GridFTP; the locator abstracts that away from the rest of the system.)
#[derive(Clone, Default)]
pub struct DatasetStore {
    inner: Arc<RwLock<HashMap<DatasetId, Arc<Dataset>>>>,
}

impl DatasetStore {
    /// New empty store.
    pub fn new() -> Self {
        DatasetStore::default()
    }

    /// Add (or replace) a dataset; returns the shared handle.
    pub fn put(&self, ds: Dataset) -> Arc<Dataset> {
        let arc = Arc::new(ds);
        self.inner
            .write()
            .insert(arc.descriptor.id.clone(), arc.clone());
        arc
    }

    /// Fetch a dataset by id.
    pub fn get(&self, id: &DatasetId) -> Option<Arc<Dataset>> {
        self.inner.read().get(id).cloned()
    }

    /// Remove a dataset.
    pub fn remove(&self, id: &DatasetId) -> Option<Arc<Dataset>> {
        self.inner.write().remove(id)
    }

    /// Number of stored datasets.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All ids, sorted.
    pub fn ids(&self) -> Vec<DatasetId> {
        let mut v: Vec<DatasetId> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{AnyRecord, CollisionEvent};

    fn ds(id: &str) -> Dataset {
        Dataset::from_records(
            id,
            id,
            vec![AnyRecord::Event(CollisionEvent {
                event_id: 0,
                run: 0,
                sqrt_s: 500.0,
                is_signal: false,
                particles: vec![],
            })],
        )
    }

    #[test]
    fn put_get_remove() {
        let store = DatasetStore::new();
        assert!(store.is_empty());
        store.put(ds("a"));
        store.put(ds("b"));
        assert_eq!(store.len(), 2);
        assert!(store.get(&DatasetId::new("a")).is_some());
        assert!(store.get(&DatasetId::new("z")).is_none());
        assert_eq!(store.ids(), vec![DatasetId::new("a"), DatasetId::new("b")]);
        store.remove(&DatasetId::new("a"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_is_shared_between_clones() {
        let store = DatasetStore::new();
        let clone = store.clone();
        store.put(ds("x"));
        assert!(clone.get(&DatasetId::new("x")).is_some());
    }
}

//! Analysis code: scripts and native analyzers.
//!
//! The paper stages user code in two flavours — PNUTS scripts and compiled
//! Java classes (§3.5). Here those are [`AnalysisCode::Script`] (IPAScript,
//! interpreted) and [`AnalysisCode::Native`] (a named entry in the site's
//! [`NativeRegistry`] of compiled analyzers). Both run behind the same
//! [`Analyzer`] trait inside an engine, filling an AIDA tree through the
//! [`Host`](ipa_script::Host) interface.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use ipa_dataset::{AnyRecord, ColumnBatch, RecordFields};
use ipa_script::{
    compile, engine_for, run_fused, BatchKernel, Host, RecordRef, ScriptBackend, ScriptEngine,
    ScriptFusion,
};

use crate::error::CoreError;

/// A unit of user analysis logic, driven record by record.
pub trait Analyzer: Send {
    /// Called once before the first record (book plots here).
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String>;
    /// Called for every record.
    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String>;
    /// Called for `batch[index]` when the caller owns the batch in an
    /// `Arc` — the engine hot path. The default delegates to
    /// [`Analyzer::process`]; script analyzers override it to hand the
    /// record to user code as a shared handle instead of a deep copy.
    fn process_indexed(
        &mut self,
        batch: &Arc<Vec<AnyRecord>>,
        index: usize,
        host: &mut dyn Host,
    ) -> Result<(), String> {
        self.process(&batch[index], host)
    }
    /// Drive a contiguous `range` of `batch` in one call — the engine's
    /// publish-batch granularity. `columns` is the columnar transcode of
    /// the *whole* batch when the data plane staged one
    /// ([`ipa_dataset::DataLayout::Columnar`]); analyzers that can
    /// vectorize override this and fall back to the row loop otherwise.
    ///
    /// Returns how many records were fully processed and the error that
    /// stopped the batch, if any. The count must be record-exact even on
    /// error: engines use it for progress accounting, `RunN` budgets, and
    /// `FailAfter` injection, which must not drift between layouts.
    fn process_batch(
        &mut self,
        batch: &Arc<Vec<AnyRecord>>,
        columns: Option<&Arc<ColumnBatch>>,
        range: Range<usize>,
        host: &mut dyn Host,
    ) -> (usize, Option<String>) {
        let _ = columns;
        let mut processed = 0;
        for i in range {
            if let Err(e) = self.process_indexed(batch, i, host) {
                return (processed, Some(e));
            }
            processed += 1;
        }
        (processed, None)
    }
    /// Called after the last record of the part.
    fn end(&mut self, host: &mut dyn Host) -> Result<(), String> {
        let _ = host;
        Ok(())
    }
}

/// Factory producing fresh analyzer instances (engines re-instantiate on
/// rewind and reload).
pub type AnalyzerFactory = Arc<dyn Fn() -> Box<dyn Analyzer> + Send + Sync>;

/// Analysis code as shipped from the client to the engines.
///
/// Serializable so the session journal can persist the loaded code and
/// recovery can re-ship it to fresh engines.
#[derive(Clone, serde::Serialize, serde::Deserialize, PartialEq, Eq)]
pub enum AnalysisCode {
    /// IPAScript source text (the PNUTS path).
    Script(String),
    /// Name of a registered native analyzer (the compiled-class path).
    Native(String),
}

impl std::fmt::Debug for AnalysisCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisCode::Script(s) => write!(f, "Script({} bytes)", s.len()),
            AnalysisCode::Native(n) => write!(f, "Native({n})"),
        }
    }
}

impl AnalysisCode {
    /// Size of the staged payload in bytes (the paper's Table 1 reports a
    /// 15 kB bytecode stage; scripts are typically far smaller).
    pub fn staged_bytes(&self) -> usize {
        match self {
            AnalysisCode::Script(s) => s.len(),
            AnalysisCode::Native(n) => n.len(),
        }
    }
}

/// Registry of named native analyzers installed at the site.
#[derive(Clone, Default)]
pub struct NativeRegistry {
    factories: HashMap<String, AnalyzerFactory>,
}

impl NativeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        NativeRegistry::default()
    }

    /// Register a factory under `name` (replaces any previous entry).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Analyzer> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Instantiate a registered analyzer.
    pub fn instantiate(&self, name: &str) -> Result<Box<dyn Analyzer>, CoreError> {
        self.factories
            .get(name)
            .map(|f| f())
            .ok_or_else(|| CoreError::Code(format!("no native analyzer '{name}' registered")))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Build an [`Analyzer`] from shipped code (compiles scripts up front so
/// syntax and resolution errors surface at load time, like the paper's
/// class loader). `backend` selects the script execution backend and
/// `fusion` the compile-pipeline fusion level; native code ignores both.
///
/// At [`ScriptFusion::Kernel`] on the VM backend the analyze body is also
/// lowered to a [`BatchKernel`] when it has the canonical guard-and-fill
/// shape; the tree-walk stays kernel-free so it remains a pure
/// per-record oracle for differential tests.
pub fn instantiate_code(
    code: &AnalysisCode,
    registry: &NativeRegistry,
    backend: ScriptBackend,
    fusion: ScriptFusion,
) -> Result<Box<dyn Analyzer>, CoreError> {
    match code {
        AnalysisCode::Script(src) => {
            let program = compile(src).map_err(|e| CoreError::Code(e.to_string()))?;
            if !program.has_process() {
                return Err(CoreError::Code(
                    "script must define fn process(record)".to_string(),
                ));
            }
            let engine = engine_for(&program, backend, fusion)
                .map_err(|e| CoreError::Code(e.to_string()))?;
            let kernel = (fusion == ScriptFusion::Kernel && backend == ScriptBackend::Vm)
                .then(|| BatchKernel::compile(&program))
                .flatten();
            Ok(Box::new(ScriptAnalyzer { engine, kernel }))
        }
        AnalysisCode::Native(name) => registry.instantiate(name),
    }
}

/// [`Analyzer`] over an IPAScript engine (tree-walk or bytecode VM), plus
/// an optional vectorized batch kernel for the canonical analyze shape.
pub struct ScriptAnalyzer {
    engine: Box<dyn ScriptEngine>,
    kernel: Option<BatchKernel>,
}

impl Analyzer for ScriptAnalyzer {
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String> {
        self.engine.run_init(host).map_err(|e| e.to_string())
    }

    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String> {
        // Borrowed-record path: one copy into its own Arc. Engines use
        // `process_indexed`, which shares the batch instead.
        self.engine
            .process(host, RecordRef::one(Arc::new(record.clone())))
            .map_err(|e| e.to_string())
    }

    fn process_indexed(
        &mut self,
        batch: &Arc<Vec<AnyRecord>>,
        index: usize,
        host: &mut dyn Host,
    ) -> Result<(), String> {
        // Hot path: the script sees `batch[index]` through an Arc handle —
        // no record data is copied, however large the event.
        self.engine
            .process(host, RecordRef::batch(Arc::clone(batch), index))
            .map_err(|e| e.to_string())
    }

    fn process_batch(
        &mut self,
        batch: &Arc<Vec<AnyRecord>>,
        columns: Option<&Arc<ColumnBatch>>,
        range: Range<usize>,
        host: &mut dyn Host,
    ) -> (usize, Option<String>) {
        // `run_fused` binds the columnar transcode (field reads become two
        // array reads in the VM), runs the batch kernel over the eligible
        // prefix when one compiled, and falls back to the per-record loop
        // for the rest — record-exact progress either way.
        let (done, err) = run_fused(
            self.engine.as_mut(),
            self.kernel.as_mut(),
            batch,
            columns,
            range,
            host,
        );
        (done, err.map(|e| e.to_string()))
    }

    fn end(&mut self, host: &mut dyn Host) -> Result<(), String> {
        self.engine.run_end(host).map_err(|e| e.to_string())
    }
}

// ------------------------------------------------------------------------
// Built-in native analyzers: the paper's Higgs search plus one analyzer per
// additional motivating domain.
// ------------------------------------------------------------------------

/// The paper's reference workload: "a Java algorithm that looks for Higgs
/// Bosons in simulated Linear Collider data". Books the candidate-mass
/// spectrum plus control plots and fills them from b-tagged pairs.
#[derive(Debug, Clone)]
pub struct HiggsSearchAnalyzer {
    /// Histogram binning for the mass spectrum.
    pub mass_bins: usize,
    /// Spectrum lower edge, GeV.
    pub mass_lo: f64,
    /// Spectrum upper edge, GeV.
    pub mass_hi: f64,
}

impl Default for HiggsSearchAnalyzer {
    fn default() -> Self {
        HiggsSearchAnalyzer {
            mass_bins: 60,
            mass_lo: 0.0,
            mass_hi: 240.0,
        }
    }
}

impl Analyzer for HiggsSearchAnalyzer {
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String> {
        host.book_h1("/higgs/bb_mass", self.mass_bins, self.mass_lo, self.mass_hi)?;
        host.book_h1("/higgs/n_btags", 10, 0.0, 10.0)?;
        host.book_h1("/higgs/visible_energy", 60, 0.0, 600.0)?;
        host.book_h2(
            "/higgs/mass_vs_mult",
            30,
            0.0,
            60.0,
            30,
            self.mass_lo,
            self.mass_hi,
        )?;
        Ok(())
    }

    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String> {
        let AnyRecord::Event(ev) = record else {
            return Err("HiggsSearchAnalyzer needs collider events".to_string());
        };
        let n_btags = ev.particles.iter().filter(|p| p.is_b_tagged()).count();
        host.fill1("/higgs/n_btags", n_btags as f64, 1.0)?;
        host.fill1("/higgs/visible_energy", ev.visible_energy(), 1.0)?;
        if let Some(m) = ev.leading_bb_mass() {
            host.fill1("/higgs/bb_mass", m, 1.0)?;
            host.fill2("/higgs/mass_vs_mult", ev.particles.len() as f64, m, 1.0)?;
        }
        Ok(())
    }

    fn process_batch(
        &mut self,
        batch: &Arc<Vec<AnyRecord>>,
        columns: Option<&Arc<ColumnBatch>>,
        range: Range<usize>,
        host: &mut dyn Host,
    ) -> (usize, Option<String>) {
        // Columnar fast path: the transcode already materialized the
        // derived fields (`n_btags`, `visible_energy`, `bb_mass`), so the
        // per-record particle sorts are gone and each histogram takes one
        // bulk fill over a column slice. Per-histogram fill order is record
        // order on both paths, so merged trees stay bit-identical.
        let fast = columns.and_then(|c| {
            if c.kind() != "event" || c.len() != batch.len() {
                return None;
            }
            let col = |name: &str| c.column_index(name).map(|i| c.column(i));
            let n_btags = col("n_btags")?;
            let visible = col("visible_energy")?;
            let bb_mass = col("bb_mass")?;
            let n_particles = col("n_particles")?;
            if !(n_btags.all_valid() && visible.all_valid() && n_particles.all_valid()) {
                return None;
            }
            Some((
                n_btags.i64s()?,
                visible.f64s()?,
                bb_mass,
                n_particles.i64s()?,
            ))
        });
        let Some((n_btags, visible, bb_mass, n_particles)) = fast else {
            // Row layout (or a foreign/stale transcode): the reference loop.
            let mut processed = 0;
            for i in range {
                if let Err(e) = self.process(&batch[i], host) {
                    return (processed, Some(e));
                }
                processed += 1;
            }
            return (processed, None);
        };

        let mut xs: Vec<f64> = Vec::with_capacity(range.len());
        xs.extend(n_btags[range.clone()].iter().map(|&b| b as f64));
        if let Err(e) = host.fill1_slice("/higgs/n_btags", &xs, 1.0) {
            return (0, Some(e));
        }
        if let Err(e) = host.fill1_slice("/higgs/visible_energy", &visible[range.clone()], 1.0) {
            return (0, Some(e));
        }
        // Gather the rows where bb_mass is present (≥ 2 b-tags).
        let masses = bb_mass.f64s().unwrap_or(&[]);
        let mut ms: Vec<f64> = Vec::new();
        let mut mult: Vec<f64> = Vec::new();
        for i in range.clone() {
            if bb_mass.is_valid(i) {
                ms.push(masses[i]);
                mult.push(n_particles[i] as f64);
            }
        }
        if let Err(e) = host.fill1_slice("/higgs/bb_mass", &ms, 1.0) {
            return (0, Some(e));
        }
        if let Err(e) = host.fill2_slice("/higgs/mass_vs_mult", &mult, &ms, 1.0) {
            return (0, Some(e));
        }
        (range.len(), None)
    }
}

/// DNA domain: motif frequency and GC-content profiling.
#[derive(Debug, Clone)]
pub struct DnaMotifAnalyzer {
    /// Motif searched in every read.
    pub motif: String,
}

impl Default for DnaMotifAnalyzer {
    fn default() -> Self {
        DnaMotifAnalyzer {
            motif: "GATTACA".to_string(),
        }
    }
}

impl Analyzer for DnaMotifAnalyzer {
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String> {
        host.book_h1("/dna/gc_content", 50, 0.0, 1.0)?;
        host.book_h1("/dna/motif_hits", 10, 0.0, 10.0)?;
        host.book_profile("/dna/gc_by_sample", 8, 0.0, 8.0)?;
        Ok(())
    }

    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String> {
        let AnyRecord::Dna(read) = record else {
            return Err("DnaMotifAnalyzer needs DNA reads".to_string());
        };
        host.fill1("/dna/gc_content", read.gc_content(), 1.0)?;
        host.fill1("/dna/motif_hits", read.count_motif(&self.motif) as f64, 1.0)?;
        host.fill_profile(
            "/dna/gc_by_sample",
            read.sample as f64,
            read.gc_content(),
            1.0,
        )?;
        Ok(())
    }
}

/// Trading domain: volume-weighted prices and trade-size spectrum.
#[derive(Debug, Clone, Default)]
pub struct TradeVwapAnalyzer;

impl Analyzer for TradeVwapAnalyzer {
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String> {
        host.book_h1("/trade/price", 100, 0.0, 200.0)?;
        host.book_h1("/trade/volume", 60, 0.0, 300.0)?;
        host.book_profile("/trade/price_by_hour", 24, 0.0, 24.0)?;
        Ok(())
    }

    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String> {
        let AnyRecord::Trade(t) = record else {
            return Err("TradeVwapAnalyzer needs trade records".to_string());
        };
        // Weight price entries by volume → histogram mean is the VWAP.
        host.fill1("/trade/price", t.price, t.volume as f64)?;
        host.fill1("/trade/volume", t.volume as f64, 1.0)?;
        let hour = (t.timestamp_ms as f64 / 3.6e6) % 24.0;
        host.fill_profile("/trade/price_by_hour", hour, t.price, 1.0)?;
        Ok(())
    }
}

/// The registry a stock site ships with: one analyzer per domain.
pub fn builtin_registry() -> NativeRegistry {
    let mut r = NativeRegistry::new();
    r.register("higgs-search", || {
        Box::new(HiggsSearchAnalyzer::default()) as Box<dyn Analyzer>
    });
    r.register("dna-motif", || {
        Box::new(DnaMotifAnalyzer::default()) as Box<dyn Analyzer>
    });
    r.register("trade-vwap", || {
        Box::new(TradeVwapAnalyzer) as Box<dyn Analyzer>
    });
    r
}

/// Convenience: apply an analyzer to a record slice against a host
/// (single-threaded reference path used in tests to validate the parallel
/// engines produce identical results).
///
/// The slice is copied once into a shared batch and driven through
/// [`Analyzer::process_batch`] — the engines' exact path — instead of the
/// borrowed [`Analyzer::process`], which would deep-copy every record into
/// its own `Arc` for script analyzers.
pub fn run_analyzer_serial(
    analyzer: &mut dyn Analyzer,
    records: &[AnyRecord],
    host: &mut dyn Host,
) -> Result<(), String> {
    let batch = Arc::new(records.to_vec());
    run_analyzer_batch(analyzer, &batch, None, host)
}

/// Like [`run_analyzer_serial`] but over an already-shared batch with an
/// optional columnar transcode — zero record copies.
pub fn run_analyzer_batch(
    analyzer: &mut dyn Analyzer,
    batch: &Arc<Vec<AnyRecord>>,
    columns: Option<&Arc<ColumnBatch>>,
    host: &mut dyn Host,
) -> Result<(), String> {
    analyzer.init(host)?;
    let (_, err) = analyzer.process_batch(batch, columns, 0..batch.len(), host);
    if let Some(e) = err {
        return Err(e);
    }
    analyzer.end(host)
}

/// A generic "count field values" analyzer usable on any record kind:
/// histograms one named numeric field. Demonstrates the framework's
/// domain neutrality without writing a script.
#[derive(Debug, Clone)]
pub struct FieldHistogramAnalyzer {
    /// Field to histogram.
    pub field: String,
    /// Output path.
    pub path: String,
    /// Binning.
    pub bins: usize,
    /// Lower edge.
    pub lo: f64,
    /// Upper edge.
    pub hi: f64,
}

impl Analyzer for FieldHistogramAnalyzer {
    fn init(&mut self, host: &mut dyn Host) -> Result<(), String> {
        host.book_h1(&self.path, self.bins, self.lo, self.hi)
    }

    fn process(&mut self, record: &AnyRecord, host: &mut dyn Host) -> Result<(), String> {
        match record.field(&self.field) {
            Some(v) => {
                if let Some(x) = v.as_f64() {
                    host.fill1(&self.path, x, 1.0)?;
                }
                Ok(())
            }
            None => Err(format!(
                "record kind '{}' has no field '{}'",
                record.kind(),
                self.field
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{DnaGeneratorConfig, EventGeneratorConfig, TradeGeneratorConfig};
    use ipa_script::AidaHost;

    #[test]
    fn higgs_analyzer_finds_the_peak() {
        let recs = EventGeneratorConfig {
            events: 3000,
            signal_fraction: 0.5,
            ..Default::default()
        }
        .generate();
        let mut host = AidaHost::new();
        run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &recs, &mut host).unwrap();
        let h = host.tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
        assert!(h.entries() > 1000);
        // The tallest bin must sit near 120 GeV.
        let (mut best_bin, mut best) = (0, 0.0);
        for i in 0..h.axis().bins() {
            if h.bin_height(i) > best {
                best = h.bin_height(i);
                best_bin = i;
            }
        }
        let peak = h.axis().bin_center(best_bin);
        assert!((peak - 120.0).abs() < 10.0, "peak at {peak} GeV");
    }

    #[test]
    fn higgs_analyzer_rejects_wrong_domain() {
        let recs = DnaGeneratorConfig {
            reads: 1,
            ..Default::default()
        }
        .generate();
        let mut host = AidaHost::new();
        let err =
            run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &recs, &mut host).unwrap_err();
        assert!(err.contains("collider events"));
    }

    #[test]
    fn dna_analyzer_counts_motifs() {
        let recs = DnaGeneratorConfig {
            reads: 400,
            motif_rate: 0.5,
            ..Default::default()
        }
        .generate();
        let mut host = AidaHost::new();
        run_analyzer_serial(&mut DnaMotifAnalyzer::default(), &recs, &mut host).unwrap();
        let hits = host.tree.get("/dna/motif_hits").unwrap().as_h1().unwrap();
        assert_eq!(hits.all_entries(), 400);
        // At least ~half the reads carry the motif → bin 0 is not everything.
        assert!(hits.bin_height(0) < 300.0);
    }

    #[test]
    fn trade_analyzer_vwap() {
        let recs = TradeGeneratorConfig {
            trades: 500,
            ..Default::default()
        }
        .generate();
        let mut host = AidaHost::new();
        run_analyzer_serial(&mut TradeVwapAnalyzer, &recs, &mut host).unwrap();
        let h = host.tree.get("/trade/price").unwrap().as_h1().unwrap();
        // VWAP should sit near the initial price of 100.
        assert!((h.mean() - 100.0).abs() < 15.0, "vwap = {}", h.mean());
    }

    #[test]
    fn registry_instantiates_and_rejects_unknown() {
        let r = builtin_registry();
        assert_eq!(r.names(), vec!["dna-motif", "higgs-search", "trade-vwap"]);
        assert!(r.instantiate("higgs-search").is_ok());
        assert!(matches!(r.instantiate("nope"), Err(CoreError::Code(_))));
    }

    #[test]
    fn script_code_compiles_or_errors_at_load() {
        let reg = NativeRegistry::new();
        let good = AnalysisCode::Script(
            "fn init() { h1(\"/x\", 10, 0.0, 1.0); } fn process(e) { }".to_string(),
        );
        for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
            let fusion = ScriptFusion::from_env();
            assert!(
                instantiate_code(&good, &reg, backend, fusion).is_ok(),
                "{backend}"
            );

            let syntax_err = AnalysisCode::Script("fn process( {".to_string());
            assert!(matches!(
                instantiate_code(&syntax_err, &reg, backend, fusion),
                Err(CoreError::Code(_))
            ));

            let no_process = AnalysisCode::Script("fn init() { }".to_string());
            assert!(matches!(
                instantiate_code(&no_process, &reg, backend, fusion),
                Err(CoreError::Code(m)) if m.contains("process")
            ));
        }
    }

    #[test]
    fn script_and_native_agree_on_the_same_records() {
        let recs = EventGeneratorConfig {
            events: 500,
            ..Default::default()
        }
        .generate();
        let mut native_host = AidaHost::new();
        run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), &recs, &mut native_host).unwrap();

        let script = r#"
            fn init() { h1("/higgs/bb_mass", 60, 0.0, 240.0); }
            fn process(e) {
                let m = e.bb_mass;
                if m != null { fill("/higgs/bb_mass", m); }
            }
        "#;
        let reg = NativeRegistry::new();
        let mut analyzer = instantiate_code(
            &AnalysisCode::Script(script.into()),
            &reg,
            ScriptBackend::from_env(),
            ScriptFusion::from_env(),
        )
        .unwrap();
        let mut script_host = AidaHost::new();
        run_analyzer_serial(analyzer.as_mut(), &recs, &mut script_host).unwrap();

        let native_h = native_host
            .tree
            .get("/higgs/bb_mass")
            .unwrap()
            .as_h1()
            .unwrap();
        let script_h = script_host
            .tree
            .get("/higgs/bb_mass")
            .unwrap()
            .as_h1()
            .unwrap();
        assert_eq!(native_h.all_entries(), script_h.all_entries());
        for i in 0..60 {
            assert_eq!(native_h.bin_entries(i), script_h.bin_entries(i), "bin {i}");
        }
    }

    #[test]
    fn field_histogram_analyzer_is_domain_neutral() {
        let trades = TradeGeneratorConfig {
            trades: 100,
            ..Default::default()
        }
        .generate();
        let mut host = AidaHost::new();
        let mut a = FieldHistogramAnalyzer {
            field: "volume".into(),
            path: "/any/volume".into(),
            bins: 20,
            lo: 0.0,
            hi: 400.0,
        };
        run_analyzer_serial(&mut a, &trades, &mut host).unwrap();
        assert_eq!(host.tree.get("/any/volume").unwrap().entries(), 100);

        let mut bad = FieldHistogramAnalyzer {
            field: "bb_mass".into(),
            path: "/any/x".into(),
            bins: 10,
            lo: 0.0,
            hi: 1.0,
        };
        let mut host2 = AidaHost::new();
        assert!(run_analyzer_serial(&mut bad, &trades, &mut host2).is_err());
    }

    #[test]
    fn staged_bytes_reports_payload_size() {
        assert_eq!(AnalysisCode::Script("abc".into()).staged_bytes(), 3);
        assert!(AnalysisCode::Native("higgs-search".into()).staged_bytes() > 0);
    }

    #[test]
    fn batch_path_shares_records_without_cloning() {
        // Regression for the per-record deep clone: driving a script
        // through `process_batch` must not copy records — the batch Arc's
        // strong count is back to 1 afterwards, and no hidden Arc-per-record
        // wrapping happened along the way.
        let batch = Arc::new(
            TradeGeneratorConfig {
                trades: 50,
                ..Default::default()
            }
            .generate(),
        );
        let reg = NativeRegistry::new();
        let script = "fn init() { h1(\"/p\", 20, 0.0, 200.0); }\n\
                      fn process(t) { fill(\"/p\", t.price); }";
        for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
            let mut analyzer = instantiate_code(
                &AnalysisCode::Script(script.into()),
                &reg,
                backend,
                ScriptFusion::from_env(),
            )
            .unwrap();
            let mut host = AidaHost::new();
            analyzer.init(&mut host).unwrap();
            assert_eq!(Arc::strong_count(&batch), 1);
            let (done, err) = analyzer.process_batch(&batch, None, 0..batch.len(), &mut host);
            assert_eq!((done, err), (50, None));
            assert_eq!(Arc::strong_count(&batch), 1, "{backend}");
            assert_eq!(host.tree.get("/p").unwrap().entries(), 50);
        }
    }

    #[test]
    fn columnar_batch_matches_row_for_native_and_script() {
        let batch = Arc::new(
            EventGeneratorConfig {
                events: 800,
                signal_fraction: 0.4,
                ..Default::default()
            }
            .generate(),
        );
        let columns = Arc::new(ipa_dataset::ColumnBatch::from_records(&batch).unwrap());

        // Native: the vectorized Higgs path against the row reference.
        let mut row_host = AidaHost::new();
        run_analyzer_batch(
            &mut HiggsSearchAnalyzer::default(),
            &batch,
            None,
            &mut row_host,
        )
        .unwrap();
        let mut col_host = AidaHost::new();
        run_analyzer_batch(
            &mut HiggsSearchAnalyzer::default(),
            &batch,
            Some(&columns),
            &mut col_host,
        )
        .unwrap();
        assert_eq!(row_host.tree, col_host.tree);
        assert!(row_host.tree.total_entries() > 0);

        // Script: column-bound VM field reads against the row reference.
        let script = r#"
            fn init() { h1("/s/mass", 60, 0.0, 240.0); h1("/s/vis", 60, 0.0, 600.0); }
            fn process(e) {
                fill("/s/vis", e.visible_energy);
                let m = e.bb_mass;
                if m != null { fill("/s/mass", m); }
            }
        "#;
        let reg = NativeRegistry::new();
        let reg2 = &reg;
        let make = |backend, fusion| {
            instantiate_code(&AnalysisCode::Script(script.into()), reg2, backend, fusion).unwrap()
        };
        for backend in [ScriptBackend::Interp, ScriptBackend::Vm] {
            for fusion in [ScriptFusion::Off, ScriptFusion::Super, ScriptFusion::Kernel] {
                let mut row = make(backend, fusion);
                let mut row_host = AidaHost::new();
                run_analyzer_batch(row.as_mut(), &batch, None, &mut row_host).unwrap();

                let mut col = make(backend, fusion);
                let mut col_host = AidaHost::new();
                run_analyzer_batch(col.as_mut(), &batch, Some(&columns), &mut col_host).unwrap();

                assert_eq!(row_host.tree, col_host.tree, "{backend}/{fusion}");
                assert!(row_host.tree.total_entries() > 0);
            }
        }
    }

    #[test]
    fn process_batch_reports_exact_progress_on_error() {
        // Mixed-domain batch: the Higgs analyzer dies on the first DNA
        // read, and the (processed, error) contract must count exactly the
        // events that preceded it — engines key FailAfter/RunN off this.
        let mut records = EventGeneratorConfig {
            events: 7,
            ..Default::default()
        }
        .generate();
        records.extend(
            DnaGeneratorConfig {
                reads: 3,
                ..Default::default()
            }
            .generate(),
        );
        let batch = Arc::new(records);
        let mut host = AidaHost::new();
        let mut a = HiggsSearchAnalyzer::default();
        a.init(&mut host).unwrap();
        let (done, err) = a.process_batch(&batch, None, 0..batch.len(), &mut host);
        assert_eq!(done, 7);
        assert!(err.unwrap().contains("collider events"));
    }
}

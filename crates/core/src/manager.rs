//! The manager node: the paper's "IPA Service Element".
//!
//! A broker node hosting the control/session service, the dataset catalog
//! service, the locator, and the storage element handle. Clients hold a
//! [`ManagerNode`] (in a real deployment this would be a SOAP endpoint; the
//! substitution is documented in DESIGN.md) and everything session-scoped
//! goes through [`ManagerNode::create_session`] — which, exactly like the
//! paper, refuses to hand out anything before the grid proxy has been
//! authenticated and authorized against the site's VO policy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;
use ipa_catalog::{Catalog, CatalogEntry, ListItem, Metadata};
use ipa_dataset::{Dataset, DatasetId};
use ipa_simgrid::{GridProxy, SecurityDomain};
use parking_lot::RwLock;

use crate::analyzer::{builtin_registry, NativeRegistry};
use crate::config::IpaConfig;
use crate::engine::EngineHandle;
use crate::error::CoreError;
use crate::journal::{replay, SessionJournal};
use crate::locator::LocatorService;
use crate::pool::{EnginePool, PoolStats};
use crate::registry::WorkerRegistry;
use crate::session::Session;
use crate::staging::SitePlane;
use crate::store::DatasetStore;

/// The IPA service element for one grid site.
pub struct ManagerNode {
    /// Site configuration.
    pub config: IpaConfig,
    site: String,
    security: SecurityDomain,
    catalog: Arc<RwLock<Catalog>>,
    store: DatasetStore,
    locator: LocatorService,
    registry: NativeRegistry,
    workers: WorkerRegistry,
    /// Shared engine pool when `IpaConfig::engine_pool` is on; sessions
    /// lease engines from here instead of owning their own threads.
    pool: Option<EnginePool>,
    /// Admission path: requested engines go through the (simulated) GRAM
    /// grant, capped by VO policy and — when the pool is capped — by the
    /// pool size standing in for the site's available nodes.
    gram: ipa_simgrid::GramSimulator,
    next_session: AtomicU64,
}

impl ManagerNode {
    /// Stand up a manager node for `site` with its security domain.
    pub fn new(site: impl Into<String>, security: SecurityDomain, config: IpaConfig) -> Self {
        let site = site.into();
        let store = DatasetStore::new();
        let registry = builtin_registry();
        let pool = config.engine_pool.then(|| {
            let shares = security
                .policies
                .iter()
                .map(|p| (p.vo.clone(), p.share))
                .collect();
            EnginePool::new(&config, registry.clone(), shares)
        });
        // GRAM's default 16-node site would silently shrink grants the VO
        // policy allows; the site's node supply is the pool cap when one
        // is set, effectively unbounded otherwise (threads are cheap
        // here — policy and quota do the real limiting).
        let gram = ipa_simgrid::GramSimulator::new(ipa_simgrid::SchedulerConfig {
            nodes_available: if config.engine_pool && config.pool_size > 0 {
                config.pool_size
            } else {
                usize::MAX
            },
            ..Default::default()
        });
        ManagerNode {
            locator: LocatorService::new(store.clone(), site.clone()),
            site,
            security,
            catalog: Arc::new(RwLock::new(Catalog::new())),
            store,
            registry,
            workers: WorkerRegistry::new(),
            pool,
            gram,
            next_session: AtomicU64::new(1),
            config,
        }
    }

    /// Replace the native-analyzer registry (sites install their own code).
    /// Rebuilds the engine pool (if any) so pooled engines resolve the new
    /// analyzers.
    pub fn with_registry(mut self, registry: NativeRegistry) -> Self {
        self.registry = registry;
        if self.pool.is_some() {
            let shares = self
                .security
                .policies
                .iter()
                .map(|p| (p.vo.clone(), p.share))
                .collect();
            self.pool = Some(EnginePool::new(&self.config, self.registry.clone(), shares));
        }
        self
    }

    /// The shared engine pool, when the manager runs one.
    pub fn pool(&self) -> Option<&EnginePool> {
        self.pool.as_ref()
    }

    /// Pool statistics; `enabled: false` (all zeros) without a pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Reject the request if the VO's aggregate leased engines would
    /// exceed its configured quota (`VoPolicy::max_total_engines`).
    fn check_vo_quota(&self, vo: &str, limit: usize, granted: usize) -> Result<(), CoreError> {
        if limit == 0 {
            return Ok(());
        }
        // With a pool the live lease counts are authoritative; without
        // one, sum the engines of the VO's active sessions.
        let in_use = match &self.pool {
            Some(pool) => pool.leased_to_vo(vo),
            None => self.workers.active_engines_for_vo(vo),
        };
        if in_use + granted > limit {
            return Err(CoreError::QuotaExceeded {
                vo: vo.to_string(),
                limit,
            });
        }
        Ok(())
    }

    /// Site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The storage element.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The locator service.
    pub fn locator(&self) -> &LocatorService {
        &self.locator
    }

    /// The worker registry (Figure 1's "Registry of References to Analysis
    /// Engines"): live engine/session state across all sessions.
    pub fn worker_registry(&self) -> &WorkerRegistry {
        &self.workers
    }

    /// Publish a dataset: store it on the SE and register it in the
    /// catalog under `folder` with `metadata`.
    pub fn publish_dataset(
        &self,
        folder: &str,
        dataset: Dataset,
        metadata: Metadata,
    ) -> Result<(), CoreError> {
        let descriptor = dataset.descriptor.clone();
        self.store.put(dataset)?;
        self.catalog
            .write()
            .add(folder, descriptor, metadata)
            .map_err(CoreError::from)
    }

    /// Browse a catalog folder (Dataset Catalog Service, Figure 3).
    pub fn browse(&self, folder: &str) -> Result<Vec<ListItem>, CoreError> {
        self.catalog.read().list(folder).map_err(CoreError::from)
    }

    /// Search the catalog with query text.
    pub fn search(&self, query: &str) -> Result<Vec<CatalogEntry>, CoreError> {
        Ok(self
            .catalog
            .read()
            .search_text(query)?
            .into_iter()
            .cloned()
            .collect())
    }

    /// Look up one catalog entry.
    pub fn catalog_entry(&self, id: &DatasetId) -> Result<CatalogEntry, CoreError> {
        Ok(self.catalog.read().entry(id)?.clone())
    }

    /// Render the catalog tree (client chooser view).
    pub fn catalog_tree(&self) -> String {
        self.catalog.read().render_tree()
    }

    /// Create an interactive session: authenticate + authorize the proxy,
    /// start engines (capped by the VO policy), and wait for their ready
    /// signals. `now` is the simulated wall-clock used for proxy validity.
    pub fn create_session(
        &self,
        proxy: &GridProxy,
        now: f64,
        requested_engines: usize,
    ) -> Result<Session, CoreError> {
        let policy = self.security.authorize(proxy, now)?;
        if proxy.remaining(now) < self.config.min_proxy_remaining_s {
            return Err(CoreError::Auth(ipa_simgrid::AuthError::Expired));
        }
        let requested = if requested_engines == 0 {
            self.config.engines_per_session
        } else {
            requested_engines
        };
        // Admission: the (simulated) GRAM grant caps the request by the VO
        // policy and the site's node supply, then the VO's aggregate
        // engine quota gets the final say.
        let granted = self.gram.grant(requested, policy.max_nodes).max(1);
        self.check_vo_quota(&proxy.vo, policy.max_total_engines, granted)?;

        let (events_tx, events_rx) = unbounded();
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let engines: Vec<EngineHandle> = match &self.pool {
            Some(pool) => pool.lease(id, &proxy.vo, granted, &events_tx)?,
            None => (0..granted)
                .map(|i| {
                    EngineHandle::spawn(
                        i,
                        self.config.publish_every,
                        self.config.checkpoint_every,
                        self.registry.clone(),
                        self.config.script_backend,
                        self.config.script_fusion,
                        events_tx.clone(),
                    )
                })
                .collect(),
        };
        self.workers
            .register_session(id, &proxy.subject, &proxy.vo, engines.len(), &self.site);
        let mut session = Session::new(
            id,
            proxy.subject.clone(),
            engines,
            events_rx,
            Box::new(SitePlane::new(self.locator.clone(), &self.config)),
            self.config.clone(),
            self.workers.clone(),
        );
        if let Some(pool) = &self.pool {
            session.attach_pool(pool.clone());
        }
        session.wait_ready()?;
        if self.config.journal {
            session.attach_journal(SessionJournal::file_for_session(
                &self.config.journal_dir,
                id,
                self.config.journal_fsync,
                self.config.compact_every,
            ));
        }
        Ok(session)
    }

    /// Recover one session from its write-ahead log after a crash: read
    /// `journal_dir/session-<id>.wal`, replay it into a
    /// [`RecoveredState`](crate::journal::RecoveredState), spawn fresh
    /// engines, and rebuild the live [`Session`] to its exact pre-crash
    /// snapshot — same epoch, same `result_version`, parts not durably
    /// completed re-queued through the scheduler. A `Running` session
    /// comes back `Paused` (the client resumes with `run`).
    ///
    /// No proxy is required: holding the session id *is* the capability,
    /// exactly like dereferencing a WSRF endpoint reference — the subject
    /// was authenticated when the journal's `SessionCreated` was written.
    /// The dataset must be locatable again (re-published on the SE) for a
    /// session that had one selected.
    pub fn recover_session(&self, id: u64) -> Result<Session, CoreError> {
        self.recover_session_in(&self.config.journal_dir, id)
    }

    fn recover_session_in(&self, journal_dir: &str, id: u64) -> Result<Session, CoreError> {
        let journal = SessionJournal::file_for_session(
            journal_dir,
            id,
            self.config.journal_fsync,
            self.config.compact_every,
        );
        let events = journal.read_events()?;
        let rec = replay(
            &events,
            self.config.merge_fan_in,
            self.config.merge_parallelism,
        );
        if events.is_empty() || rec.session != id {
            return Err(CoreError::Journal(format!(
                "no recoverable state for session {id} in '{journal_dir}'"
            )));
        }

        let (events_tx, events_rx) = unbounded();
        // Keep fresh ids above every recovered one.
        self.next_session.fetch_max(id + 1, Ordering::Relaxed);
        // Journals predate VO tagging, so recovered leases ride under the
        // empty VO (weight 1.0 in the fair-share split).
        let engines: Vec<EngineHandle> = match &self.pool {
            Some(pool) => pool.lease(id, "", rec.engines.max(1), &events_tx)?,
            None => (0..rec.engines.max(1))
                .map(|i| {
                    EngineHandle::spawn(
                        i,
                        self.config.publish_every,
                        self.config.checkpoint_every,
                        self.registry.clone(),
                        self.config.script_backend,
                        self.config.script_fusion,
                        events_tx.clone(),
                    )
                })
                .collect(),
        };
        self.workers
            .register_session(id, &rec.subject, "", engines.len(), &self.site);
        let mut session = Session::recover(
            id,
            rec,
            engines,
            events_rx,
            Box::new(SitePlane::new(self.locator.clone(), &self.config)),
            self.config.clone(),
            self.workers.clone(),
            Some(journal),
        )?;
        if let Some(pool) = &self.pool {
            session.attach_pool(pool.clone());
        }
        Ok(session)
    }

    /// Recover every session journaled under `journal_dir` (manager
    /// restart). Returns the rebuilt sessions; an unreadable or empty
    /// journal fails the whole recovery rather than silently dropping a
    /// user's session.
    pub fn recover(&self, journal_dir: &str) -> Result<Vec<Session>, CoreError> {
        let mut ids = Vec::new();
        let entries = match std::fs::read_dir(journal_dir) {
            Ok(entries) => entries,
            // No directory simply means nothing was ever journaled.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CoreError::Journal(format!("read {journal_dir}: {e}"))),
        };
        for entry in entries {
            let entry =
                entry.map_err(|e| CoreError::Journal(format!("read {journal_dir}: {e}")))?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("session-"))
                .and_then(|n| n.strip_suffix(".wal"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            ids.push(id);
        }
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| self.recover_session_in(journal_dir, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_catalog::MetaValue;
    use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
    use ipa_simgrid::VoPolicy;

    fn manager() -> ManagerNode {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        ManagerNode::new("slac.stanford.edu", sec, IpaConfig::default())
    }

    fn proxy(m_sec: &SecurityDomain) -> GridProxy {
        m_sec.issue_proxy("/CN=alice", "ilc", 0.0, 7200.0)
    }

    #[test]
    fn publish_browse_search() {
        let m = manager();
        let ds = ipa_dataset::generate_dataset(
            "lc-mini",
            "Mini LC",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 100,
                ..Default::default()
            }),
        );
        let mut meta = Metadata::new();
        meta.insert("detector".into(), MetaValue::Str("SiD".into()));
        m.publish_dataset("/lc/simulation", ds, meta).unwrap();

        assert_eq!(m.store().len(), 1);
        let root = m.browse("/").unwrap();
        assert!(matches!(&root[0], ListItem::Folder(f) if f == "lc"));
        let hits = m.search("detector == SiD").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(m.catalog_entry(&DatasetId::new("lc-mini")).is_ok());
        assert!(m.catalog_tree().contains("lc-mini"));
        assert!(m.locator().locate(&DatasetId::new("lc-mini")).is_ok());
    }

    #[test]
    fn session_requires_valid_proxy() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        let m = ManagerNode::new("slac", sec.clone(), IpaConfig::default());
        // Foreign proxy fails.
        let foreign = SecurityDomain::new("other", 1).issue_proxy("/CN=eve", "ilc", 0.0, 7200.0);
        assert!(matches!(
            m.create_session(&foreign, 0.0, 2),
            Err(CoreError::Auth(_))
        ));
        // Nearly-expired proxy fails the minimum-lifetime check.
        let short = sec.issue_proxy("/CN=alice", "ilc", 0.0, 30.0);
        assert!(matches!(
            m.create_session(&short, 0.0, 2),
            Err(CoreError::Auth(_))
        ));
        // Good proxy succeeds.
        let good = proxy(&sec);
        let mut s = m.create_session(&good, 0.0, 2).unwrap();
        assert_eq!(s.engines(), 2);
        s.close();
    }

    #[test]
    fn vo_policy_caps_engines() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 3));
        let m = ManagerNode::new("slac", sec.clone(), IpaConfig::default());
        let mut s = m.create_session(&proxy(&sec), 0.0, 100).unwrap();
        assert_eq!(s.engines(), 3);
        s.close();
    }

    #[test]
    fn zero_request_uses_configured_default() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        let m = ManagerNode::new(
            "slac",
            sec.clone(),
            IpaConfig {
                engines_per_session: 5,
                ..Default::default()
            },
        );
        let mut s = m.create_session(&proxy(&sec), 0.0, 0).unwrap();
        assert_eq!(s.engines(), 5);
        s.close();
    }

    #[test]
    fn vo_engine_quota_admits_denies_and_releases() {
        let sec = SecurityDomain::new("slac-osg", 7)
            .with_policy(VoPolicy::new("ilc", 16).with_engine_quota(4));
        let m = ManagerNode::new("slac", sec.clone(), IpaConfig::default());
        let mut a = m.create_session(&proxy(&sec), 0.0, 3).unwrap();
        // 3 in use + 2 more would cross the VO-wide limit of 4.
        match m.create_session(&proxy(&sec), 0.0, 2) {
            Err(CoreError::QuotaExceeded { vo, limit }) => {
                assert_eq!(vo, "ilc");
                assert_eq!(limit, 4);
            }
            Err(e) => panic!("expected QuotaExceeded, got {e:?}"),
            Ok(_) => panic!("quota should have denied the request"),
        }
        // 3 + 1 == 4 still fits exactly.
        let mut b = m.create_session(&proxy(&sec), 0.0, 1).unwrap();
        assert_eq!(b.engines(), 1);
        b.close();
        a.close();
        // Closing released the footprint: the denied request now admits.
        let mut c = m.create_session(&proxy(&sec), 0.0, 2).unwrap();
        assert_eq!(c.engines(), 2);
        c.close();
    }

    #[test]
    fn pooled_manager_leases_and_recycles_engines() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        let m = ManagerNode::new(
            "slac",
            sec.clone(),
            IpaConfig {
                engine_pool: true,
                ..Default::default()
            },
        );
        assert!(m.pool_stats().enabled);
        let mut s = m.create_session(&proxy(&sec), 0.0, 3).unwrap();
        assert_eq!(s.engines(), 3);
        let stats = m.pool_stats();
        assert_eq!(stats.leased, 3);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.by_vo.get("ilc"), Some(&3));
        s.close();
        // Engines go back onto the free list instead of being joined.
        let stats = m.pool_stats();
        assert_eq!(stats.leased, 0);
        assert_eq!(stats.free, 3);
        assert_eq!(stats.engines_recycled, 3);
        // And the next session reuses them without spawning more threads.
        let mut s2 = m.create_session(&proxy(&sec), 0.0, 2).unwrap();
        assert_eq!(s2.engines(), 2);
        assert_eq!(m.pool_stats().engines_spawned, 3);
        s2.close();
    }
}

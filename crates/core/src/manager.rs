//! The manager node: the paper's "IPA Service Element".
//!
//! A broker node hosting the control/session service, the dataset catalog
//! service, the locator, and the storage element handle. Clients hold a
//! [`ManagerNode`] (in a real deployment this would be a SOAP endpoint; the
//! substitution is documented in DESIGN.md) and everything session-scoped
//! goes through [`ManagerNode::create_session`] — which, exactly like the
//! paper, refuses to hand out anything before the grid proxy has been
//! authenticated and authorized against the site's VO policy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;
use ipa_catalog::{Catalog, CatalogEntry, ListItem, Metadata};
use ipa_dataset::{Dataset, DatasetId};
use ipa_simgrid::{GridProxy, SecurityDomain};
use parking_lot::RwLock;

use crate::analyzer::{builtin_registry, NativeRegistry};
use crate::config::IpaConfig;
use crate::engine::EngineHandle;
use crate::error::CoreError;
use crate::journal::{replay, SessionJournal};
use crate::locator::LocatorService;
use crate::registry::WorkerRegistry;
use crate::session::Session;
use crate::staging::SitePlane;
use crate::store::DatasetStore;

/// The IPA service element for one grid site.
pub struct ManagerNode {
    /// Site configuration.
    pub config: IpaConfig,
    site: String,
    security: SecurityDomain,
    catalog: Arc<RwLock<Catalog>>,
    store: DatasetStore,
    locator: LocatorService,
    registry: NativeRegistry,
    workers: WorkerRegistry,
    next_session: AtomicU64,
}

impl ManagerNode {
    /// Stand up a manager node for `site` with its security domain.
    pub fn new(site: impl Into<String>, security: SecurityDomain, config: IpaConfig) -> Self {
        let site = site.into();
        let store = DatasetStore::new();
        ManagerNode {
            config,
            locator: LocatorService::new(store.clone(), site.clone()),
            site,
            security,
            catalog: Arc::new(RwLock::new(Catalog::new())),
            store,
            registry: builtin_registry(),
            workers: WorkerRegistry::new(),
            next_session: AtomicU64::new(1),
        }
    }

    /// Replace the native-analyzer registry (sites install their own code).
    pub fn with_registry(mut self, registry: NativeRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The storage element.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The locator service.
    pub fn locator(&self) -> &LocatorService {
        &self.locator
    }

    /// The worker registry (Figure 1's "Registry of References to Analysis
    /// Engines"): live engine/session state across all sessions.
    pub fn worker_registry(&self) -> &WorkerRegistry {
        &self.workers
    }

    /// Publish a dataset: store it on the SE and register it in the
    /// catalog under `folder` with `metadata`.
    pub fn publish_dataset(
        &self,
        folder: &str,
        dataset: Dataset,
        metadata: Metadata,
    ) -> Result<(), CoreError> {
        let descriptor = dataset.descriptor.clone();
        self.store.put(dataset)?;
        self.catalog
            .write()
            .add(folder, descriptor, metadata)
            .map_err(CoreError::from)
    }

    /// Browse a catalog folder (Dataset Catalog Service, Figure 3).
    pub fn browse(&self, folder: &str) -> Result<Vec<ListItem>, CoreError> {
        self.catalog.read().list(folder).map_err(CoreError::from)
    }

    /// Search the catalog with query text.
    pub fn search(&self, query: &str) -> Result<Vec<CatalogEntry>, CoreError> {
        Ok(self
            .catalog
            .read()
            .search_text(query)?
            .into_iter()
            .cloned()
            .collect())
    }

    /// Look up one catalog entry.
    pub fn catalog_entry(&self, id: &DatasetId) -> Result<CatalogEntry, CoreError> {
        Ok(self.catalog.read().entry(id)?.clone())
    }

    /// Render the catalog tree (client chooser view).
    pub fn catalog_tree(&self) -> String {
        self.catalog.read().render_tree()
    }

    /// Create an interactive session: authenticate + authorize the proxy,
    /// start engines (capped by the VO policy), and wait for their ready
    /// signals. `now` is the simulated wall-clock used for proxy validity.
    pub fn create_session(
        &self,
        proxy: &GridProxy,
        now: f64,
        requested_engines: usize,
    ) -> Result<Session, CoreError> {
        let policy = self.security.authorize(proxy, now)?;
        if proxy.remaining(now) < self.config.min_proxy_remaining_s {
            return Err(CoreError::Auth(ipa_simgrid::AuthError::Expired));
        }
        let requested = if requested_engines == 0 {
            self.config.engines_per_session
        } else {
            requested_engines
        };
        let granted = requested.min(policy.max_nodes).max(1);

        let (events_tx, events_rx) = unbounded();
        let engines: Vec<EngineHandle> = (0..granted)
            .map(|i| {
                EngineHandle::spawn(
                    i,
                    self.config.publish_every,
                    self.config.checkpoint_every,
                    self.registry.clone(),
                    self.config.script_backend,
                    events_tx.clone(),
                )
            })
            .collect();

        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.workers
            .register_session(id, &proxy.subject, granted, &self.site);
        let mut session = Session::new(
            id,
            proxy.subject.clone(),
            engines,
            events_rx,
            Box::new(SitePlane::new(self.locator.clone(), &self.config)),
            self.config.clone(),
            self.workers.clone(),
        );
        session.wait_ready()?;
        if self.config.journal {
            session.attach_journal(SessionJournal::file_for_session(
                &self.config.journal_dir,
                id,
                self.config.journal_fsync,
                self.config.compact_every,
            ));
        }
        Ok(session)
    }

    /// Recover one session from its write-ahead log after a crash: read
    /// `journal_dir/session-<id>.wal`, replay it into a
    /// [`RecoveredState`](crate::journal::RecoveredState), spawn fresh
    /// engines, and rebuild the live [`Session`] to its exact pre-crash
    /// snapshot — same epoch, same `result_version`, parts not durably
    /// completed re-queued through the scheduler. A `Running` session
    /// comes back `Paused` (the client resumes with `run`).
    ///
    /// No proxy is required: holding the session id *is* the capability,
    /// exactly like dereferencing a WSRF endpoint reference — the subject
    /// was authenticated when the journal's `SessionCreated` was written.
    /// The dataset must be locatable again (re-published on the SE) for a
    /// session that had one selected.
    pub fn recover_session(&self, id: u64) -> Result<Session, CoreError> {
        self.recover_session_in(&self.config.journal_dir, id)
    }

    fn recover_session_in(&self, journal_dir: &str, id: u64) -> Result<Session, CoreError> {
        let journal = SessionJournal::file_for_session(
            journal_dir,
            id,
            self.config.journal_fsync,
            self.config.compact_every,
        );
        let events = journal.read_events()?;
        let rec = replay(
            &events,
            self.config.merge_fan_in,
            self.config.merge_parallelism,
        );
        if events.is_empty() || rec.session != id {
            return Err(CoreError::Journal(format!(
                "no recoverable state for session {id} in '{journal_dir}'"
            )));
        }

        let (events_tx, events_rx) = unbounded();
        let engines: Vec<EngineHandle> = (0..rec.engines.max(1))
            .map(|i| {
                EngineHandle::spawn(
                    i,
                    self.config.publish_every,
                    self.config.checkpoint_every,
                    self.registry.clone(),
                    self.config.script_backend,
                    events_tx.clone(),
                )
            })
            .collect();

        // Keep fresh ids above every recovered one.
        self.next_session.fetch_max(id + 1, Ordering::Relaxed);
        self.workers
            .register_session(id, &rec.subject, engines.len(), &self.site);
        Session::recover(
            id,
            rec,
            engines,
            events_rx,
            Box::new(SitePlane::new(self.locator.clone(), &self.config)),
            self.config.clone(),
            self.workers.clone(),
            Some(journal),
        )
    }

    /// Recover every session journaled under `journal_dir` (manager
    /// restart). Returns the rebuilt sessions; an unreadable or empty
    /// journal fails the whole recovery rather than silently dropping a
    /// user's session.
    pub fn recover(&self, journal_dir: &str) -> Result<Vec<Session>, CoreError> {
        let mut ids = Vec::new();
        let entries = match std::fs::read_dir(journal_dir) {
            Ok(entries) => entries,
            // No directory simply means nothing was ever journaled.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CoreError::Journal(format!("read {journal_dir}: {e}"))),
        };
        for entry in entries {
            let entry =
                entry.map_err(|e| CoreError::Journal(format!("read {journal_dir}: {e}")))?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("session-"))
                .and_then(|n| n.strip_suffix(".wal"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            ids.push(id);
        }
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| self.recover_session_in(journal_dir, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_catalog::MetaValue;
    use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
    use ipa_simgrid::VoPolicy;

    fn manager() -> ManagerNode {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        ManagerNode::new("slac.stanford.edu", sec, IpaConfig::default())
    }

    fn proxy(m_sec: &SecurityDomain) -> GridProxy {
        m_sec.issue_proxy("/CN=alice", "ilc", 0.0, 7200.0)
    }

    #[test]
    fn publish_browse_search() {
        let m = manager();
        let ds = ipa_dataset::generate_dataset(
            "lc-mini",
            "Mini LC",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 100,
                ..Default::default()
            }),
        );
        let mut meta = Metadata::new();
        meta.insert("detector".into(), MetaValue::Str("SiD".into()));
        m.publish_dataset("/lc/simulation", ds, meta).unwrap();

        assert_eq!(m.store().len(), 1);
        let root = m.browse("/").unwrap();
        assert!(matches!(&root[0], ListItem::Folder(f) if f == "lc"));
        let hits = m.search("detector == SiD").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(m.catalog_entry(&DatasetId::new("lc-mini")).is_ok());
        assert!(m.catalog_tree().contains("lc-mini"));
        assert!(m.locator().locate(&DatasetId::new("lc-mini")).is_ok());
    }

    #[test]
    fn session_requires_valid_proxy() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        let m = ManagerNode::new("slac", sec.clone(), IpaConfig::default());
        // Foreign proxy fails.
        let foreign = SecurityDomain::new("other", 1).issue_proxy("/CN=eve", "ilc", 0.0, 7200.0);
        assert!(matches!(
            m.create_session(&foreign, 0.0, 2),
            Err(CoreError::Auth(_))
        ));
        // Nearly-expired proxy fails the minimum-lifetime check.
        let short = sec.issue_proxy("/CN=alice", "ilc", 0.0, 30.0);
        assert!(matches!(
            m.create_session(&short, 0.0, 2),
            Err(CoreError::Auth(_))
        ));
        // Good proxy succeeds.
        let good = proxy(&sec);
        let mut s = m.create_session(&good, 0.0, 2).unwrap();
        assert_eq!(s.engines(), 2);
        s.close();
    }

    #[test]
    fn vo_policy_caps_engines() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 3));
        let m = ManagerNode::new("slac", sec.clone(), IpaConfig::default());
        let mut s = m.create_session(&proxy(&sec), 0.0, 100).unwrap();
        assert_eq!(s.engines(), 3);
        s.close();
    }

    #[test]
    fn zero_request_uses_configured_default() {
        let sec = SecurityDomain::new("slac-osg", 7).with_policy(VoPolicy::new("ilc", 16));
        let m = ManagerNode::new(
            "slac",
            sec.clone(),
            IpaConfig {
                engines_per_session: 5,
                ..Default::default()
            },
        );
        let mut s = m.create_session(&proxy(&sec), 0.0, 0).unwrap();
        assert_eq!(s.engines(), 5);
        s.close();
    }
}

//! The Locator service.
//!
//! "The dataset reference … contains an 'identifier' that uniquely
//! identifies the dataset in the catalog. This dataset must be submitted to
//! the locator service that will resolve the location of the dataset from
//! the dataset identifier. The location could be a URL to an FTP server or
//! a set of contiguous records in a database server." (§3.4)

use serde::{Deserialize, Serialize};

use ipa_dataset::DatasetId;

use crate::error::CoreError;
use crate::store::DatasetStore;

/// A resolved dataset location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetLocation {
    /// Lives on this site's storage element (our in-memory store).
    StorageElement {
        /// GridFTP-style URL for diagnostics.
        url: String,
    },
    /// A contiguous record range in a database-like source.
    RecordRange {
        /// Source name.
        source: String,
        /// First record.
        first: u64,
        /// One-past-last record.
        last: u64,
    },
}

/// Resolves dataset ids to physical locations and hands back the splitter
/// to use (in this implementation there is a single splitter per site).
#[derive(Clone)]
pub struct LocatorService {
    store: DatasetStore,
    site: String,
}

impl LocatorService {
    /// Locator over a site's store.
    pub fn new(store: DatasetStore, site: impl Into<String>) -> Self {
        LocatorService {
            store,
            site: site.into(),
        }
    }

    /// Resolve an id to a location.
    pub fn locate(&self, id: &DatasetId) -> Result<DatasetLocation, CoreError> {
        if self.store.get(id).is_some() {
            Ok(DatasetLocation::StorageElement {
                url: format!("gsiftp://{}/se/{}", self.site, id),
            })
        } else {
            Err(CoreError::NotLocatable(id.0.clone()))
        }
    }

    /// Fetch the actual dataset (follows a successful locate).
    pub fn fetch(&self, id: &DatasetId) -> Result<std::sync::Arc<ipa_dataset::Dataset>, CoreError> {
        self.store
            .get(id)
            .ok_or_else(|| CoreError::NotLocatable(id.0.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{AnyRecord, CollisionEvent, Dataset};

    #[test]
    fn locate_known_and_unknown() {
        let store = DatasetStore::new();
        store.put(Dataset::from_records(
            "lc-1",
            "LC",
            vec![AnyRecord::Event(CollisionEvent {
                event_id: 0,
                run: 0,
                sqrt_s: 500.0,
                is_signal: false,
                particles: vec![],
            })],
        ));
        let loc = LocatorService::new(store, "slac.stanford.edu");
        match loc.locate(&DatasetId::new("lc-1")).unwrap() {
            DatasetLocation::StorageElement { url } => {
                assert_eq!(url, "gsiftp://slac.stanford.edu/se/lc-1");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            loc.locate(&DatasetId::new("missing")),
            Err(CoreError::NotLocatable(_))
        ));
        assert!(loc.fetch(&DatasetId::new("lc-1")).is_ok());
        assert!(loc.fetch(&DatasetId::new("missing")).is_err());
    }
}

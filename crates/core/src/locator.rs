//! The Locator service.
//!
//! "The dataset reference … contains an 'identifier' that uniquely
//! identifies the dataset in the catalog. This dataset must be submitted to
//! the locator service that will resolve the location of the dataset from
//! the dataset identifier. The location could be a URL to an FTP server or
//! a set of contiguous records in a database server." (§3.4)

use serde::{Deserialize, Serialize};

use ipa_dataset::DatasetId;

use crate::error::CoreError;
use crate::store::DatasetStore;

/// A resolved dataset location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetLocation {
    /// Lives on this site's storage element (our in-memory store).
    StorageElement {
        /// GridFTP-style URL for diagnostics.
        url: String,
    },
    /// A contiguous record range in a database-like source.
    RecordRange {
        /// Source name.
        source: String,
        /// First record.
        first: u64,
        /// One-past-last record.
        last: u64,
    },
}

/// Resolves dataset ids to physical locations and hands back the splitter
/// to use (in this implementation there is a single splitter per site).
#[derive(Clone)]
pub struct LocatorService {
    store: DatasetStore,
    site: String,
}

impl LocatorService {
    /// Locator over a site's store.
    pub fn new(store: DatasetStore, site: impl Into<String>) -> Self {
        LocatorService {
            store,
            site: site.into(),
        }
    }

    /// Resolve an id to a location. Plain ids resolve to this site's
    /// storage element; `"<base>@<first>..<last>"` ids resolve to a
    /// [`DatasetLocation::RecordRange`] view over `base` (the paper's
    /// "set of contiguous records in a database server" arm) when the
    /// range fits inside the base dataset.
    pub fn locate(&self, id: &DatasetId) -> Result<DatasetLocation, CoreError> {
        if self.store.get(id).is_some() {
            return Ok(DatasetLocation::StorageElement {
                url: format!("gsiftp://{}/se/{}", self.site, id),
            });
        }
        if let Some((source, first, last)) = parse_range_id(&id.0) {
            if let Some(base) = self.store.get(&DatasetId::new(source)) {
                if first <= last && last <= base.descriptor.records {
                    return Ok(DatasetLocation::RecordRange {
                        source: source.to_string(),
                        first,
                        last,
                    });
                }
            }
        }
        Err(CoreError::NotLocatable(id.0.clone()))
    }

    /// Fetch the actual dataset (follows a successful locate).
    pub fn fetch(&self, id: &DatasetId) -> Result<std::sync::Arc<ipa_dataset::Dataset>, CoreError> {
        self.store
            .get(id)
            .ok_or_else(|| CoreError::NotLocatable(id.0.clone()))
    }

    /// Turn a resolved location into the dataset to stage: the stored
    /// dataset for a storage element, or a materialized view of the
    /// `[first, last)` slice for a record range.
    pub fn materialize(
        &self,
        id: &DatasetId,
        location: &DatasetLocation,
    ) -> Result<std::sync::Arc<ipa_dataset::Dataset>, CoreError> {
        match location {
            DatasetLocation::StorageElement { .. } => self.fetch(id),
            DatasetLocation::RecordRange {
                source,
                first,
                last,
            } => {
                let base = self.fetch(&DatasetId::new(source.as_str()))?;
                base.range_view(id.0.clone(), *first as usize, *last as usize)
                    .map(std::sync::Arc::new)
                    .ok_or_else(|| CoreError::NotLocatable(id.0.clone()))
            }
        }
    }
}

/// Parse a `"<base>@<first>..<last>"` range id. Returns `None` for plain
/// ids (no `@`) or malformed ranges.
fn parse_range_id(id: &str) -> Option<(&str, u64, u64)> {
    let (base, range) = id.rsplit_once('@')?;
    let (first, last) = range.split_once("..")?;
    if base.is_empty() {
        return None;
    }
    Some((base, first.parse().ok()?, last.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_dataset::{AnyRecord, CollisionEvent, Dataset};

    #[test]
    fn locate_known_and_unknown() {
        let store = DatasetStore::new();
        store
            .put(Dataset::from_records(
                "lc-1",
                "LC",
                vec![AnyRecord::Event(CollisionEvent {
                    event_id: 0,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })],
            ))
            .unwrap();
        let loc = LocatorService::new(store, "slac.stanford.edu");
        match loc.locate(&DatasetId::new("lc-1")).unwrap() {
            DatasetLocation::StorageElement { url } => {
                assert_eq!(url, "gsiftp://slac.stanford.edu/se/lc-1");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            loc.locate(&DatasetId::new("missing")),
            Err(CoreError::NotLocatable(_))
        ));
        assert!(loc.fetch(&DatasetId::new("lc-1")).is_ok());
        assert!(loc.fetch(&DatasetId::new("missing")).is_err());
    }

    fn range_fixture(n: u64) -> LocatorService {
        let store = DatasetStore::new();
        let recs = (0..n)
            .map(|i| {
                AnyRecord::Event(CollisionEvent {
                    event_id: i,
                    run: 0,
                    sqrt_s: 500.0,
                    is_signal: false,
                    particles: vec![],
                })
            })
            .collect();
        store
            .put(Dataset::from_records("base", "Base", recs))
            .unwrap();
        LocatorService::new(store, "site")
    }

    #[test]
    fn range_ids_resolve_and_materialize_the_slice() {
        let loc = range_fixture(100);
        let id = DatasetId::new("base@10..30");
        let location = loc.locate(&id).unwrap();
        assert_eq!(
            location,
            DatasetLocation::RecordRange {
                source: "base".into(),
                first: 10,
                last: 30,
            }
        );
        let view = loc.materialize(&id, &location).unwrap();
        assert_eq!(view.descriptor.records, 20);
        assert!(matches!(
            &view.records[0],
            AnyRecord::Event(e) if e.event_id == 10
        ));
        assert!(matches!(
            &view.records[19],
            AnyRecord::Event(e) if e.event_id == 29
        ));
    }

    #[test]
    fn bad_range_ids_are_not_locatable() {
        let loc = range_fixture(10);
        for bad in [
            "base@5..50", // past the end
            "base@7..3",  // inverted
            "base@x..3",  // malformed bound
            "base@3",     // no range
            "other@0..5", // unknown base
            "@0..5",      // empty base
        ] {
            assert!(
                matches!(
                    loc.locate(&DatasetId::new(bad)),
                    Err(CoreError::NotLocatable(_))
                ),
                "{bad} should not locate"
            );
        }
        // Degenerate-but-valid empty view.
        assert!(loc.locate(&DatasetId::new("base@4..4")).is_ok());
    }
}

//! Site / session configuration.

use ipa_dataset::DataLayout;
use ipa_script::{ScriptBackend, ScriptFusion};
use serde::{Deserialize, Serialize};

use crate::sched::SchedulerPolicy;

/// Configuration of a manager node and the sessions it creates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpaConfig {
    /// Engines started per session ("pre-configured number of analysis
    /// engines", paper §3.2) — still capped by the VO policy.
    pub engines_per_session: usize,
    /// Records an engine processes between publishing partial results.
    /// Smaller → faster feedback, more merge traffic (ablated in benches).
    pub publish_every: usize,
    /// Byte-balanced split when true, record-count split when false.
    pub byte_balanced_split: bool,
    /// Simulated seconds of proxy lifetime required to create a session.
    pub min_proxy_remaining_s: f64,
    /// How many times a failed engine is retried (its part re-queued and
    /// the engine kept alive) before the engine is declared dead. 0 means
    /// first failure is fatal for the engine — its part still re-runs on a
    /// surviving engine.
    pub max_part_retries: u32,
    /// How parts are mapped onto engines (see [`SchedulerPolicy`]).
    /// Defaults to the `IPA_SCHEDULER` environment variable when set,
    /// `Static` otherwise.
    #[serde(default = "SchedulerPolicy::from_env")]
    pub scheduler: SchedulerPolicy,
    /// Micro-parts per engine under the pull-based policies: the dataset
    /// is cut into `engines × oversub` chunks. Ignored by `Static`.
    /// Values below 1 are treated as 1.
    #[serde(default = "default_oversub")]
    pub oversub: usize,
    /// An engine is a straggler when `its_rate × straggler_factor` is
    /// still below the median engine rate. Only `WorkStealing` acts on
    /// this (by speculatively re-issuing the straggler's part).
    #[serde(default = "default_straggler_factor")]
    pub straggler_factor: f64,
    /// Per-engine slowdown multipliers applied at session creation (for
    /// benches and straggler experiments): engine `i` sleeps
    /// `(factor−1)×` its compute time per batch when `factors[i] > 1`.
    /// Engines beyond the vector's length run at full speed.
    #[serde(default)]
    pub speed_factors: Vec<f64>,
    /// Engines publish a full-tree checkpoint every this-many publishes
    /// and compact deltas in between. 1 restores the legacy behavior of
    /// cloning the whole tree on every publish; larger values cut publish
    /// traffic but lengthen the resync window after a lost delta.
    #[serde(default = "default_checkpoint_every")]
    pub checkpoint_every: usize,
    /// Sub-merger bucket size at the AIDA manager (§2.5 two-level merge):
    /// a dirty poll re-merges only the dirty parts' buckets of this many
    /// parts each, then combines the bucket trees.
    #[serde(default = "default_merge_fan_in")]
    pub merge_fan_in: usize,
    /// Max threads rebuilding dirty sub-merger buckets in parallel.
    #[serde(default = "default_merge_parallelism")]
    pub merge_parallelism: usize,
    /// Target chunk size for the pipelined stager's part transfers, in
    /// bytes. Smaller chunks overlap read and transfer at a finer grain
    /// at the cost of more per-chunk latency.
    #[serde(default = "default_stage_chunk_bytes")]
    pub stage_chunk_bytes: usize,
    /// Failed chunk-transfer attempts absorbed per part (with exponential
    /// backoff) before staging aborts with a `StagingFailure`.
    #[serde(default = "default_stage_retries")]
    pub stage_retries: u32,
    /// Overlap the serial staging-disk read with the parallel LAN
    /// transfers (the paper's pipelined "move parts" shape). When false,
    /// the full read pass completes before the first transfer (eager).
    #[serde(default = "default_stage_overlap")]
    pub stage_overlap: bool,
    /// Depth of the bounded queue between the stage reader and the
    /// transfer workers; the reader blocks (backpressure) when full.
    #[serde(default = "default_stage_queue_depth")]
    pub stage_queue_depth: usize,
    /// Keep finished splits in the content-addressed split cache so
    /// re-selecting the same dataset restages without re-splitting or
    /// re-transferring.
    #[serde(default = "default_split_cache")]
    pub split_cache: bool,
    /// Which IPAScript execution backend the engines run user scripts on
    /// (`vm` = bytecode VM, `interp` = AST tree-walk). Defaults to the
    /// `IPA_SCRIPT_BACKEND` environment variable when set, the VM
    /// otherwise.
    #[serde(default = "ScriptBackend::from_env")]
    pub script_backend: ScriptBackend,
    /// How aggressively the script compile pipeline fuses the analyze
    /// body (`off` = the resolver's raw op stream, `super` = peephole
    /// superinstructions, `kernel` = superinstructions plus the
    /// vectorized batch kernel over columnar parts). Results are
    /// bit-identical across levels. Defaults to the `IPA_SCRIPT_FUSION`
    /// environment variable when set, `kernel` otherwise.
    #[serde(default = "ScriptFusion::from_env")]
    pub script_fusion: ScriptFusion,
    /// In-memory layout the data plane stages parts in. `columnar`
    /// transcodes each part once at staging time so engines evaluate over
    /// column slices with bulk histogram fills; `row` keeps the record
    /// loop (the differential oracle). Results are bit-identical either
    /// way. Defaults to the `IPA_DATA_LAYOUT` environment variable when
    /// set, `columnar` otherwise.
    #[serde(default = "DataLayout::from_env")]
    pub data_layout: DataLayout,
    /// Write-ahead journal every session's control-plane transitions and
    /// result stream under [`IpaConfig::journal_dir`], enabling
    /// [`ManagerNode::recover`](crate::ManagerNode::recover) after a crash.
    /// Defaults to the `IPA_JOURNAL` environment variable (`off`,
    /// `buffered`, or `fsync`), off otherwise — off preserves the
    /// journal-free behavior exactly.
    #[serde(default = "default_journal")]
    pub journal: bool,
    /// Directory holding one `session-<id>.wal` per session.
    #[serde(default = "default_journal_dir")]
    pub journal_dir: String,
    /// Sync journal appends to stable storage (`IPA_JOURNAL=fsync`).
    /// Buffered appends survive a process crash but not an OS crash.
    #[serde(default = "default_journal_fsync")]
    pub journal_fsync: bool,
    /// Compact a session's journal (rewrite as one snapshot record) every
    /// this-many appended records; 0 disables compaction.
    #[serde(default = "default_compact_every")]
    pub compact_every: u64,
    /// Lease engines from a manager-owned shared
    /// [`EnginePool`](crate::pool::EnginePool) instead of spawning
    /// per-session engine threads. Defaults to the `IPA_ENGINE_POOL`
    /// environment variable (`on`/`1`/`true` enable it), off otherwise —
    /// off preserves the per-session-ownership behavior exactly, and a
    /// single session behaves bit-identically either way.
    #[serde(default = "default_engine_pool")]
    pub engine_pool: bool,
    /// Cap on engines the shared pool will ever spawn; 0 (the default)
    /// grows on demand and never preempts. With a cap, arriving sessions
    /// trigger fair-share revocation of over-entitled sessions' engines
    /// at part boundaries.
    #[serde(default)]
    pub pool_size: usize,
    /// How long a lease request waits for preempted engines to come back
    /// before granting partially (or failing with `PoolExhausted`).
    #[serde(default = "default_pool_lease_timeout_ms")]
    pub pool_lease_timeout_ms: u64,
    /// Worker threads in the gateway's connection reactor. Each worker
    /// multiplexes many nonblocking client sockets, so gateway thread
    /// count stays constant regardless of connected clients.
    #[serde(default = "default_gateway_workers")]
    pub gateway_workers: usize,
}

fn default_oversub() -> usize {
    4
}

fn default_straggler_factor() -> f64 {
    3.0
}

fn default_checkpoint_every() -> usize {
    16
}

fn default_merge_fan_in() -> usize {
    crate::aida_manager::DEFAULT_MERGE_FAN_IN
}

fn default_merge_parallelism() -> usize {
    crate::aida_manager::DEFAULT_MERGE_PARALLELISM
}

fn default_stage_chunk_bytes() -> usize {
    4 << 20
}

fn default_stage_retries() -> u32 {
    2
}

fn default_stage_overlap() -> bool {
    true
}

fn default_stage_queue_depth() -> usize {
    4
}

fn default_split_cache() -> bool {
    true
}

/// Parsed form of the `IPA_JOURNAL` environment variable.
fn journal_env() -> Option<String> {
    std::env::var("IPA_JOURNAL")
        .ok()
        .map(|v| v.trim().to_ascii_lowercase())
}

fn default_journal() -> bool {
    matches!(journal_env().as_deref(), Some("buffered") | Some("fsync"))
}

fn default_journal_dir() -> String {
    "ipa-journal".to_string()
}

fn default_journal_fsync() -> bool {
    matches!(journal_env().as_deref(), Some("fsync"))
}

fn default_compact_every() -> u64 {
    256
}

/// Parsed form of the `IPA_ENGINE_POOL` environment variable.
fn default_engine_pool() -> bool {
    matches!(
        std::env::var("IPA_ENGINE_POOL")
            .ok()
            .map(|v| v.trim().to_ascii_lowercase())
            .as_deref(),
        Some("on") | Some("1") | Some("true")
    )
}

fn default_pool_lease_timeout_ms() -> u64 {
    2_000
}

fn default_gateway_workers() -> usize {
    4
}

impl Default for IpaConfig {
    fn default() -> Self {
        IpaConfig {
            engines_per_session: 4,
            publish_every: 1000,
            byte_balanced_split: true,
            min_proxy_remaining_s: 60.0,
            max_part_retries: 0,
            scheduler: SchedulerPolicy::from_env(),
            oversub: default_oversub(),
            straggler_factor: default_straggler_factor(),
            speed_factors: Vec::new(),
            checkpoint_every: default_checkpoint_every(),
            merge_fan_in: default_merge_fan_in(),
            merge_parallelism: default_merge_parallelism(),
            stage_chunk_bytes: default_stage_chunk_bytes(),
            stage_retries: default_stage_retries(),
            stage_overlap: default_stage_overlap(),
            stage_queue_depth: default_stage_queue_depth(),
            split_cache: default_split_cache(),
            script_backend: ScriptBackend::from_env(),
            script_fusion: ScriptFusion::from_env(),
            data_layout: DataLayout::from_env(),
            journal: default_journal(),
            journal_dir: default_journal_dir(),
            journal_fsync: default_journal_fsync(),
            compact_every: default_compact_every(),
            engine_pool: default_engine_pool(),
            pool_size: 0,
            pool_lease_timeout_ms: default_pool_lease_timeout_ms(),
            gateway_workers: default_gateway_workers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = IpaConfig::default();
        assert!(c.engines_per_session >= 1);
        assert!(c.publish_every >= 1);
        assert!(c.oversub >= 1);
        assert!(c.straggler_factor > 1.0);
    }

    #[test]
    fn old_configs_deserialize_with_scheduler_defaults() {
        // A config serialized before the scheduling plane existed must
        // still load, picking up defaults for the new knobs.
        let json = r#"{
            "engines_per_session": 2,
            "publish_every": 500,
            "byte_balanced_split": true,
            "min_proxy_remaining_s": 60.0,
            "max_part_retries": 1
        }"#;
        let c: IpaConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.engines_per_session, 2);
        assert_eq!(c.oversub, 4);
        assert!(c.speed_factors.is_empty());
        // Result-plane knobs (added after the scheduler plane) too.
        assert_eq!(c.checkpoint_every, 16);
        assert!(c.merge_fan_in >= 1);
        assert!(c.merge_parallelism >= 1);
        // Staging-plane knobs likewise default in.
        assert_eq!(c.stage_chunk_bytes, 4 << 20);
        assert_eq!(c.stage_retries, 2);
        assert!(c.stage_overlap);
        assert_eq!(c.stage_queue_depth, 4);
        assert!(c.split_cache);
        // The script backend and fusion level default in as well.
        assert_eq!(c.script_backend, ScriptBackend::from_env());
        assert_eq!(c.script_fusion, ScriptFusion::from_env());
        // So does the data-plane layout.
        assert_eq!(c.data_layout, DataLayout::from_env());
        // Journal knobs (newest) default in too.
        assert_eq!(c.journal_dir, "ipa-journal");
        assert_eq!(c.compact_every, 256);
        // Multi-tenant knobs default in as well.
        assert_eq!(c.engine_pool, default_engine_pool());
        assert_eq!(c.pool_size, 0);
        assert_eq!(c.pool_lease_timeout_ms, 2_000);
        assert_eq!(c.gateway_workers, 4);
    }

    #[test]
    fn script_backend_round_trips_through_json() {
        let mut c = IpaConfig {
            script_backend: ScriptBackend::Interp,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"script_backend\":\"interp\""), "{json}");
        let back: IpaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.script_backend, ScriptBackend::Interp);

        c.script_backend = ScriptBackend::Vm;
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"script_backend\":\"vm\""), "{json}");
    }

    #[test]
    fn script_fusion_round_trips_through_json() {
        let c = IpaConfig {
            script_fusion: ScriptFusion::Super,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"script_fusion\":\"super\""), "{json}");
        let back: IpaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.script_fusion, ScriptFusion::Super);
    }

    #[test]
    fn data_layout_round_trips_through_json() {
        let mut c = IpaConfig {
            data_layout: DataLayout::Row,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"data_layout\":\"row\""), "{json}");
        let back: IpaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.data_layout, DataLayout::Row);

        c.data_layout = DataLayout::Columnar;
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"data_layout\":\"columnar\""), "{json}");
    }
}

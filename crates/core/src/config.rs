//! Site / session configuration.

use serde::{Deserialize, Serialize};

/// Configuration of a manager node and the sessions it creates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpaConfig {
    /// Engines started per session ("pre-configured number of analysis
    /// engines", paper §3.2) — still capped by the VO policy.
    pub engines_per_session: usize,
    /// Records an engine processes between publishing partial results.
    /// Smaller → faster feedback, more merge traffic (ablated in benches).
    pub publish_every: usize,
    /// Byte-balanced split when true, record-count split when false.
    pub byte_balanced_split: bool,
    /// Simulated seconds of proxy lifetime required to create a session.
    pub min_proxy_remaining_s: f64,
    /// How many times a failed engine is retried (its part re-queued and
    /// the engine kept alive) before the engine is declared dead. 0 means
    /// first failure is fatal for the engine — its part still re-runs on a
    /// surviving engine.
    pub max_part_retries: u32,
}

impl Default for IpaConfig {
    fn default() -> Self {
        IpaConfig {
            engines_per_session: 4,
            publish_every: 1000,
            byte_balanced_split: true,
            min_proxy_remaining_s: 60.0,
            max_part_retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = IpaConfig::default();
        assert!(c.engines_per_session >= 1);
        assert!(c.publish_every >= 1);
    }
}

//! The worker registry and session directory.
//!
//! Figure 1's manager node holds a "Registry of References to Analysis
//! Engines", and the control service tracks the session resources it
//! created. This module provides both as shared, thread-safe directories:
//! sessions update them as engines come up, crunch, fail, and shut down;
//! operators (and tests) read consistent snapshots through the manager.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::engine::EngineId;

/// Lifecycle state of one analysis engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerState {
    /// Spawned, ready signal received.
    Ready,
    /// Processing a part.
    Busy,
    /// Current part finished; waiting for work.
    Idle,
    /// Died (analyzer error or fault).
    Failed,
    /// Session over; thread joined.
    Shutdown,
}

/// Registry entry for one engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// Owning session.
    pub session: u64,
    /// Engine id within the session.
    pub engine: EngineId,
    /// Simulated host name the engine "runs on".
    pub host: String,
    /// Current state.
    pub state: WorkerState,
    /// Records processed by this engine so far (across parts).
    pub records_processed: u64,
}

/// Directory entry for one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// Session id.
    pub id: u64,
    /// Authenticated subject.
    pub subject: String,
    /// VO the session's proxy belonged to (empty for sessions recovered
    /// from pre-multi-tenant journals).
    #[serde(default)]
    pub vo: String,
    /// Engines granted.
    pub engines: usize,
    /// True until the session closes.
    pub active: bool,
}

#[derive(Default)]
struct Inner {
    workers: BTreeMap<(u64, EngineId), WorkerInfo>,
    sessions: BTreeMap<u64, SessionInfo>,
}

/// Shared registry handle (cheap to clone).
#[derive(Clone, Default)]
pub struct WorkerRegistry {
    inner: Arc<RwLock<Inner>>,
}

impl WorkerRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        WorkerRegistry::default()
    }

    /// Record a new session and its engines (all [`WorkerState::Ready`]).
    pub fn register_session(&self, id: u64, subject: &str, vo: &str, engines: usize, site: &str) {
        let mut inner = self.inner.write();
        inner.sessions.insert(
            id,
            SessionInfo {
                id,
                subject: subject.to_string(),
                vo: vo.to_string(),
                engines,
                active: true,
            },
        );
        for e in 0..engines {
            inner.workers.insert(
                (id, e),
                WorkerInfo {
                    session: id,
                    engine: e,
                    host: format!("wn{e:03}.{site}"),
                    state: WorkerState::Ready,
                    records_processed: 0,
                },
            );
        }
    }

    /// Update one engine's state (and optionally its progress counter).
    pub fn update_worker(
        &self,
        session: u64,
        engine: EngineId,
        state: WorkerState,
        records_processed: Option<u64>,
    ) {
        let mut inner = self.inner.write();
        if let Some(w) = inner.workers.get_mut(&(session, engine)) {
            // Failures and shutdowns are terminal.
            if w.state != WorkerState::Failed && w.state != WorkerState::Shutdown {
                w.state = state;
            }
            if let Some(r) = records_processed {
                w.records_processed = r.max(w.records_processed);
            }
        }
    }

    /// Zero the progress counters of one session's engines (run-epoch
    /// bump: rewind / code reload / dataset re-select). States are left
    /// untouched — the counter is monotone *within* an epoch, so a reset
    /// must go through here rather than `update_worker`.
    pub fn reset_progress(&self, session: u64) {
        let mut inner = self.inner.write();
        for (_, w) in inner.workers.range_mut((session, 0)..(session + 1, 0)) {
            w.records_processed = 0;
        }
    }

    /// Mark a whole session closed (engines become Shutdown).
    pub fn close_session(&self, session: u64) {
        let mut inner = self.inner.write();
        if let Some(s) = inner.sessions.get_mut(&session) {
            s.active = false;
        }
        for (_, w) in inner.workers.range_mut((session, 0)..(session + 1, 0)) {
            w.state = WorkerState::Shutdown;
        }
    }

    /// Snapshot of every worker, ordered by (session, engine).
    pub fn workers(&self) -> Vec<WorkerInfo> {
        self.inner.read().workers.values().cloned().collect()
    }

    /// Workers of one session.
    pub fn session_workers(&self, session: u64) -> Vec<WorkerInfo> {
        self.inner
            .read()
            .workers
            .range((session, 0)..(session + 1, 0))
            .map(|(_, w)| w.clone())
            .collect()
    }

    /// Snapshot of every session.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.inner.read().sessions.values().cloned().collect()
    }

    /// Sessions still active.
    pub fn active_sessions(&self) -> usize {
        self.inner
            .read()
            .sessions
            .values()
            .filter(|s| s.active)
            .count()
    }

    /// Engines granted to *active* sessions of one VO — the quota
    /// denominator when the manager runs without a shared pool (with a
    /// pool, the pool's live lease counts are authoritative).
    pub fn active_engines_for_vo(&self, vo: &str) -> usize {
        self.inner
            .read()
            .sessions
            .values()
            .filter(|s| s.active && s.vo == vo)
            .map(|s| s.engines)
            .sum()
    }

    /// Render the session directory (one line per session) for the
    /// shell's `sessions` command and operator dashboards.
    pub fn render_sessions(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::from("session  vo        engines  active  subject\n");
        for s in inner.sessions.values() {
            out.push_str(&format!(
                "{:>7}  {:<8}  {:>7}  {:<6}  {}\n",
                s.id,
                if s.vo.is_empty() { "-" } else { &s.vo },
                s.engines,
                s.active,
                s.subject
            ));
        }
        out
    }

    /// Render the operator panel (the "hosts that have analysis engines
    /// running" box of Figure 4).
    pub fn render(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::from("session  engine  host              state      records\n");
        for w in inner.workers.values() {
            out.push_str(&format!(
                "{:>7}  {:>6}  {:<16}  {:<9}  {:>7}\n",
                w.session,
                w.engine,
                w.host,
                format!("{:?}", w.state),
                w.records_processed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_snapshot() {
        let r = WorkerRegistry::new();
        r.register_session(1, "/CN=alice", "ilc", 3, "slac");
        r.register_session(2, "/CN=bob", "cms", 2, "slac");
        assert_eq!(r.workers().len(), 5);
        assert_eq!(r.sessions().len(), 2);
        assert_eq!(r.active_sessions(), 2);
        assert_eq!(r.active_engines_for_vo("ilc"), 3);
        assert_eq!(r.active_engines_for_vo("cms"), 2);
        assert_eq!(r.active_engines_for_vo("atlas"), 0);
        assert!(r.render_sessions().contains("ilc"));

        r.update_worker(1, 0, WorkerState::Busy, Some(500));
        let w = &r.session_workers(1)[0];
        assert_eq!(w.state, WorkerState::Busy);
        assert_eq!(w.records_processed, 500);
        assert_eq!(w.host, "wn000.slac");
    }

    #[test]
    fn progress_counter_is_monotone() {
        let r = WorkerRegistry::new();
        r.register_session(1, "/CN=a", "ilc", 1, "s");
        r.update_worker(1, 0, WorkerState::Busy, Some(100));
        r.update_worker(1, 0, WorkerState::Busy, Some(50)); // stale update
        assert_eq!(r.session_workers(1)[0].records_processed, 100);
    }

    #[test]
    fn reset_progress_zeroes_counters_but_keeps_state() {
        let r = WorkerRegistry::new();
        r.register_session(1, "/CN=a", "ilc", 2, "s");
        r.register_session(2, "/CN=b", "ilc", 1, "s");
        r.update_worker(1, 0, WorkerState::Busy, Some(100));
        r.update_worker(1, 1, WorkerState::Idle, Some(250));
        r.update_worker(2, 0, WorkerState::Busy, Some(42));
        r.reset_progress(1);
        let workers = r.session_workers(1);
        assert!(workers.iter().all(|w| w.records_processed == 0));
        assert_eq!(workers[0].state, WorkerState::Busy);
        assert_eq!(workers[1].state, WorkerState::Idle);
        // Other sessions are untouched.
        assert_eq!(r.session_workers(2)[0].records_processed, 42);
        // And the counter is usable again after the reset (not stuck at
        // the pre-reset max).
        r.update_worker(1, 0, WorkerState::Busy, Some(10));
        assert_eq!(r.session_workers(1)[0].records_processed, 10);
    }

    #[test]
    fn failure_is_terminal() {
        let r = WorkerRegistry::new();
        r.register_session(1, "/CN=a", "ilc", 1, "s");
        r.update_worker(1, 0, WorkerState::Failed, None);
        r.update_worker(1, 0, WorkerState::Busy, None); // ignored
        assert_eq!(r.session_workers(1)[0].state, WorkerState::Failed);
    }

    #[test]
    fn close_session_shuts_workers_down() {
        let r = WorkerRegistry::new();
        r.register_session(7, "/CN=a", "ilc", 2, "s");
        r.close_session(7);
        assert_eq!(r.active_sessions(), 0);
        // Closed sessions release their quota footprint.
        assert_eq!(r.active_engines_for_vo("ilc"), 0);
        assert!(r
            .session_workers(7)
            .iter()
            .all(|w| w.state == WorkerState::Shutdown));
    }

    #[test]
    fn render_contains_hosts() {
        let r = WorkerRegistry::new();
        r.register_session(1, "/CN=a", "ilc", 2, "slac.example");
        let panel = r.render();
        assert!(panel.contains("wn000.slac.example"));
        assert!(panel.contains("wn001.slac.example"));
        assert!(panel.contains("Ready"));
    }

    #[test]
    fn unknown_worker_updates_are_ignored() {
        let r = WorkerRegistry::new();
        r.update_worker(9, 9, WorkerState::Busy, Some(1)); // no panic
        assert!(r.workers().is_empty());
    }
}

//! Record framing and storage backends for the session journal.
//!
//! The on-disk format is a flat sequence of length-prefixed, checksummed
//! records:
//!
//! ```text
//! ┌──────────────┬──────────────┬───────────────────┐
//! │ len: u32 LE  │ crc: u32 LE  │ payload (len B)   │  × N
//! └──────────────┴──────────────┴───────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. A reader walks records from the
//! front and stops at the first record whose header is truncated, whose
//! payload is shorter than `len`, or whose checksum mismatches — everything
//! before that point is trusted, everything after is discarded. That is the
//! property crash recovery needs: a write torn by the crash can only damage
//! the tail, never reinterpret the prefix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// Header bytes per record: `u32` length + `u32` CRC.
pub const RECORD_HEADER: usize = 8;

/// Records larger than this are rejected at append time and treated as
/// corruption at read time (a length field of garbage bytes would otherwise
/// make the reader skip gigabytes past the real tail).
pub const MAX_RECORD: usize = 256 << 20;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data` (the zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frame one payload as a journal record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Walk `buf` from the front, returning every valid payload plus the byte
/// offset of the first invalid/truncated record (== `buf.len()` when the
/// whole buffer is clean). Decoding *stops* at the first bad record: a
/// corrupt or torn tail never hides behind later, accidentally-plausible
/// frames.
pub fn decode_records(buf: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= RECORD_HEADER {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + RECORD_HEADER;
        if len > MAX_RECORD || buf.len() - start < len {
            break;
        }
        let payload = &buf[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        out.push(payload);
        pos = start + len;
    }
    (out, pos)
}

/// Shared byte buffer behind the in-memory backend. Clones share storage,
/// so a test can keep a handle while the session owns the journal — the
/// "disk" survives the session being dropped (the simulated crash).
pub type MemHandle = Arc<Mutex<Vec<u8>>>;

/// Where journal bytes live.
pub enum JournalBackend {
    /// One append-only file; `fsync` adds a `sync_data` after every append
    /// (durability against OS crash, not just process crash).
    File {
        /// Journal file path.
        path: PathBuf,
        /// Sync to stable storage after each append.
        fsync: bool,
        /// Open append handle, lazily (re)created.
        file: Option<File>,
    },
    /// A shared in-memory buffer (tests): identical framing, no I/O.
    Memory(MemHandle),
}

impl JournalBackend {
    /// File backend at `path` (parent directories are created on first
    /// append).
    pub fn file(path: impl Into<PathBuf>, fsync: bool) -> Self {
        JournalBackend::File {
            path: path.into(),
            fsync,
            file: None,
        }
    }

    /// Fresh in-memory backend; keep a [`JournalBackend::handle`] clone to
    /// read it back after the owner is gone.
    pub fn memory() -> Self {
        JournalBackend::Memory(Arc::new(Mutex::new(Vec::new())))
    }

    /// In-memory backend over an existing shared buffer.
    pub fn memory_shared(handle: MemHandle) -> Self {
        JournalBackend::Memory(handle)
    }

    /// The shared buffer of a memory backend (`None` for files).
    pub fn handle(&self) -> Option<MemHandle> {
        match self {
            JournalBackend::Memory(h) => Some(Arc::clone(h)),
            JournalBackend::File { .. } => None,
        }
    }

    /// The file path of a file backend (`None` for memory).
    pub fn path(&self) -> Option<&Path> {
        match self {
            JournalBackend::File { path, .. } => Some(path),
            JournalBackend::Memory(_) => None,
        }
    }

    /// Append one framed record (already encoded by [`encode_record`]).
    /// The full frame goes out in a single `write_all`, so a crash between
    /// appends never leaves a half-frame from *this* process (a crash
    /// mid-write can, which is exactly what the checksummed tail absorbs).
    pub fn append(&mut self, frame: &[u8]) -> std::io::Result<()> {
        match self {
            JournalBackend::File { path, fsync, file } => {
                if file.is_none() {
                    if let Some(parent) = path.parent() {
                        if !parent.as_os_str().is_empty() {
                            std::fs::create_dir_all(parent)?;
                        }
                    }
                    *file = Some(OpenOptions::new().create(true).append(true).open(&*path)?);
                }
                let f = file.as_mut().expect("file opened above");
                f.write_all(frame)?;
                if *fsync {
                    f.sync_data()?;
                }
                Ok(())
            }
            JournalBackend::Memory(buf) => {
                buf.lock().extend_from_slice(frame);
                Ok(())
            }
        }
    }

    /// Read the whole journal back (valid and torn bytes alike; the caller
    /// runs [`decode_records`] over it).
    pub fn read_all(&self) -> std::io::Result<Vec<u8>> {
        match self {
            JournalBackend::File { path, .. } => match File::open(path) {
                Ok(mut f) => {
                    let mut buf = Vec::new();
                    f.read_to_end(&mut buf)?;
                    Ok(buf)
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
                Err(e) => Err(e),
            },
            JournalBackend::Memory(buf) => Ok(buf.lock().clone()),
        }
    }

    /// Atomically replace the journal contents (compaction: a snapshot
    /// record plus whatever followed it). Files go through a temp file +
    /// rename so a crash mid-compaction leaves either the old or the new
    /// journal, never a mix.
    pub fn replace(&mut self, contents: &[u8]) -> std::io::Result<()> {
        match self {
            JournalBackend::File { path, fsync, file } => {
                *file = None; // drop the append handle before swapping
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let tmp = path.with_extension("wal.tmp");
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(contents)?;
                    if *fsync {
                        f.sync_data()?;
                    }
                }
                std::fs::rename(&tmp, &*path)?;
                Ok(())
            }
            JournalBackend::Memory(buf) => {
                let mut b = buf.lock();
                b.clear();
                b.extend_from_slice(contents);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = Vec::new();
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"gamma gamma"];
        for p in &payloads {
            buf.extend_from_slice(&encode_record(p));
        }
        let (got, consumed) = decode_records(&buf);
        assert_eq!(got, payloads);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn decode_stops_at_truncated_tail() {
        let mut buf = encode_record(b"keep me");
        let second = encode_record(b"torn record");
        buf.extend_from_slice(&second[..second.len() - 3]);
        let (got, consumed) = decode_records(&buf);
        assert_eq!(got, vec![b"keep me".as_slice()]);
        assert_eq!(consumed, encode_record(b"keep me").len());
    }

    #[test]
    fn decode_stops_at_corrupt_crc() {
        let mut buf = encode_record(b"first");
        let mut bad = encode_record(b"second");
        let n = bad.len();
        bad[n - 1] ^= 0xff; // flip a payload byte after the CRC was stamped
        buf.extend_from_slice(&bad);
        buf.extend_from_slice(&encode_record(b"unreachable"));
        let (got, _) = decode_records(&buf);
        // Decoding stops at the corrupt record; later valid records are
        // *not* resurrected (the stream is untrustworthy past the tear).
        assert_eq!(got, vec![b"first".as_slice()]);
    }

    #[test]
    fn decode_rejects_absurd_length_field() {
        let mut buf = encode_record(b"ok");
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"garbage");
        let (got, _) = decode_records(&buf);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn memory_backend_survives_owner_drop() {
        let mut backend = JournalBackend::memory();
        let handle = backend.handle().unwrap();
        backend.append(&encode_record(b"persist")).unwrap();
        drop(backend); // the "crash"
        let revived = JournalBackend::memory_shared(handle);
        let bytes = revived.read_all().unwrap();
        let (got, _) = decode_records(&bytes);
        assert_eq!(got, vec![b"persist".as_slice()]);
    }

    #[test]
    fn replace_swaps_contents() {
        let mut backend = JournalBackend::memory();
        backend.append(&encode_record(b"old")).unwrap();
        let fresh = encode_record(b"compacted");
        backend.replace(&fresh).unwrap();
        let bytes = backend.read_all().unwrap();
        let (got, _) = decode_records(&bytes);
        assert_eq!(got, vec![b"compacted".as_slice()]);
    }
}

//! Durable session journal: write-ahead logging and crash recovery.
//!
//! Sessions are WSRF-style addressable resources (§3.2), but until this
//! subsystem every one of them lived only in manager memory — a manager
//! crash lost each user's epoch, dataset selection, loaded code, part
//! progress, and merged results. The journal makes the control plane
//! durable: every mutating transition and every result-plane publish is
//! appended to a per-session write-ahead log
//! ([`wal`]: length-prefixed, CRC-checksummed records), and
//! [`ManagerNode::recover`](crate::ManagerNode::recover) replays the log to
//! reconstruct each [`Session`](crate::Session) to its exact pre-crash
//! snapshot — same epoch, same `result_version`, parts not durably
//! completed re-queued through the scheduler.
//!
//! Replay is pure: [`replay`] folds a [`JournalEvent`] list into a
//! [`RecoveredState`] using a scratch result plane, never touching engines
//! or the network. The recovery path then rebuilds the live session around
//! that state (re-staging the dataset through the staging plane — the
//! split cache makes that O(parts) for a dataset staged before) and
//! resumes scheduling from the first incomplete part.
//!
//! Periodic *compaction* bounds log growth: every
//! [`compact_every`](crate::IpaConfig::compact_every) appended records the
//! journal rewrites itself as a single [`JournalEvent::Snapshot`] record
//! (full session + result-plane state) — replay treats a snapshot as a
//! fast-forward. Recovery itself rewrites a freshly compacted journal, so
//! repeated crash/recover cycles cannot accrete unbounded history.

pub mod wal;

use serde::{Deserialize, Serialize};

use crate::aida_manager::{AidaExport, AidaManager, PartUpdate};
use crate::analyzer::AnalysisCode;
use crate::engine::PartId;
use crate::error::CoreError;
use crate::session::RunState;

pub use wal::{decode_records, encode_record, JournalBackend, MemHandle};

/// One durable control-plane or result-plane transition.
///
/// The variants mirror the session's mutating entry points one-to-one; the
/// replayer folds them in order. `ResultUpdate` records the exact
/// [`PartUpdate`] handed to the result plane (checkpoint or delta), so
/// replay reproduces the accumulators bit-for-bit; `ResultVersion` records
/// each time the cached merged snapshot actually re-materialized, so the
/// recovered `result_version` — and therefore a client's cached copy —
/// stays valid across the restart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalEvent {
    /// The session came into existence (subject already authenticated).
    SessionCreated {
        /// Session id (also the journal's file name).
        session: u64,
        /// Authenticated subject the session belongs to.
        subject: String,
        /// Engines granted at creation.
        engines: usize,
    },
    /// `select_dataset` succeeded for this id (original id text, including
    /// `"<base>@<first>..<last>"` range views — recovery re-stages through
    /// the same locator path).
    DatasetSelected {
        /// The dataset id as the client supplied it.
        id: String,
    },
    /// `load_code` succeeded.
    CodeLoaded {
        /// The staged analysis code.
        code: AnalysisCode,
    },
    /// A control-plane reset started run epoch `epoch`
    /// (`select_dataset` / `load_code` / `rewind`).
    EpochBumped {
        /// The new epoch.
        epoch: u64,
    },
    /// `run` / `run_events` put the session into `Running`.
    RunStarted,
    /// `pause` was issued.
    RunPaused,
    /// `stop` was issued.
    RunStopped,
    /// `rewind` was issued (its epoch bump is journaled separately).
    Rewound,
    /// A part completed durably under `epoch` (first winner only).
    PartCompleted {
        /// The completed part.
        part: PartId,
        /// Epoch the completion belongs to.
        epoch: u64,
    },
    /// A result-plane publish, exactly as handed to
    /// [`AidaManager::publish`](crate::AidaManager::publish).
    ResultUpdate {
        /// The part the update belongs to.
        part: PartId,
        /// The published update (checkpoint or delta).
        update: PartUpdate,
    },
    /// A part's accumulated results were invalidated (failure recovery).
    PartInvalidated {
        /// The invalidated part.
        part: PartId,
    },
    /// The cached merged snapshot re-materialized at this version (the
    /// client-visible `result_version`).
    ResultVersion {
        /// The new snapshot version.
        version: u64,
    },
    /// The session's lease on pooled engines changed (fair-share
    /// revocation returned some at a part boundary). Recovery respawns the
    /// post-revocation count, keeping the journal consistent with what the
    /// session actually held.
    LeaseChanged {
        /// Engines still held after the change.
        engines: usize,
    },
    /// Compaction fast-forward: complete session state at a point in time.
    Snapshot(SessionSnapshot),
}

/// Complete recoverable session state, written by compaction and replayed
/// as a fast-forward.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Session id.
    pub session: u64,
    /// Authenticated subject.
    pub subject: String,
    /// Engines granted at creation.
    pub engines: usize,
    /// Selected dataset id (client-supplied text), if any.
    pub dataset: Option<String>,
    /// Loaded analysis code, if any.
    pub code: Option<AnalysisCode>,
    /// Run epoch.
    pub epoch: u64,
    /// Run state.
    pub state: RunState,
    /// Parts durably completed in the current epoch.
    pub completed: Vec<PartId>,
    /// Full result-plane state (accumulators, dirty set, snapshot,
    /// version).
    pub results: AidaExport,
}

/// The per-session write-ahead log: an append sink with periodic
/// compaction.
pub struct SessionJournal {
    backend: JournalBackend,
    /// Records appended since the last compaction (or creation).
    appended_since_compact: u64,
    compact_every: u64,
    /// Appends that failed at the I/O or serialization layer. Journaling
    /// is best-effort by design: a full disk degrades durability, it does
    /// not take the live session down.
    append_errors: u64,
}

impl SessionJournal {
    /// New journal over `backend`, compacting every `compact_every`
    /// appended records (0 disables compaction).
    pub fn new(backend: JournalBackend, compact_every: u64) -> Self {
        SessionJournal {
            backend,
            appended_since_compact: 0,
            compact_every,
            append_errors: 0,
        }
    }

    /// File-backed journal for session `id` under `dir`.
    pub fn file_for_session(dir: &str, id: u64, fsync: bool, compact_every: u64) -> Self {
        SessionJournal::new(
            JournalBackend::file(session_journal_path(dir, id), fsync),
            compact_every,
        )
    }

    /// The shared buffer of a memory-backed journal (`None` for files).
    pub fn handle(&self) -> Option<MemHandle> {
        self.backend.handle()
    }

    /// Appends that failed (disk full, serialization error, ...).
    pub fn append_errors(&self) -> u64 {
        self.append_errors
    }

    /// Append one event. Best-effort: failures are counted, not raised.
    pub fn append(&mut self, ev: &JournalEvent) {
        match serde_json::to_vec(ev) {
            Ok(payload) => {
                if self.backend.append(&encode_record(&payload)).is_err() {
                    self.append_errors += 1;
                } else {
                    self.appended_since_compact += 1;
                }
            }
            Err(_) => self.append_errors += 1,
        }
    }

    /// True when the append counter has reached the compaction threshold;
    /// the owner should build a [`SessionSnapshot`] and call
    /// [`SessionJournal::compact`].
    pub fn should_compact(&self) -> bool {
        self.compact_every > 0 && self.appended_since_compact >= self.compact_every
    }

    /// Rewrite the journal as a single snapshot record (atomic replace).
    pub fn compact(&mut self, snapshot: &SessionSnapshot) {
        let Ok(payload) = serde_json::to_vec(&JournalEvent::Snapshot(snapshot.clone())) else {
            self.append_errors += 1;
            return;
        };
        if self.backend.replace(&encode_record(&payload)).is_err() {
            self.append_errors += 1;
            return;
        }
        self.appended_since_compact = 0;
    }

    /// Read the journal back and decode every valid event, stopping at the
    /// first torn or corrupt record (see [`decode_records`]).
    pub fn read_events(&self) -> Result<Vec<JournalEvent>, CoreError> {
        let bytes = self
            .backend
            .read_all()
            .map_err(|e| CoreError::Journal(format!("read journal: {e}")))?;
        Ok(decode_events(&bytes))
    }
}

/// Journal file path for session `id` under `dir`.
pub fn session_journal_path(dir: &str, id: u64) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("session-{id}.wal"))
}

/// Decode every valid [`JournalEvent`] from raw journal bytes. Stops at
/// the first framing *or* deserialization failure — a record that passes
/// its checksum but does not parse marks the same trust boundary as a torn
/// tail.
pub fn decode_events(bytes: &[u8]) -> Vec<JournalEvent> {
    let (frames, _) = decode_records(bytes);
    let mut events = Vec::with_capacity(frames.len());
    for frame in frames {
        match serde_json::from_slice::<JournalEvent>(frame) {
            Ok(ev) => events.push(ev),
            Err(_) => break,
        }
    }
    events
}

/// Session state reconstructed by [`replay`] — everything the recovery
/// path needs to rebuild a live [`Session`](crate::Session).
pub struct RecoveredState {
    /// Session id.
    pub session: u64,
    /// Authenticated subject.
    pub subject: String,
    /// Engines the session was created with.
    pub engines: usize,
    /// Selected dataset id (client-supplied text), if any.
    pub dataset: Option<String>,
    /// Loaded analysis code, if any.
    pub code: Option<AnalysisCode>,
    /// Run epoch at the time of the last durable record.
    pub epoch: u64,
    /// Run state at the time of the last durable record.
    pub state: RunState,
    /// Parts durably completed in the current epoch (union of journaled
    /// completions and result-plane accumulators flagged done).
    pub completed: Vec<PartId>,
    /// The reconstructed result plane: same accumulators, same dirty set,
    /// same cached snapshot, same `result_version` as before the crash.
    pub aida: AidaManager,
}

impl RecoveredState {
    /// The session's completed-part set as a sorted, deduplicated list:
    /// journaled `PartCompleted` events plus accumulators flagged done (a
    /// done checkpoint always precedes its completion record, so the union
    /// only widens the set with parts whose final state *is* durable).
    fn finalize_completed(&mut self) {
        let mut set: std::collections::BTreeSet<PartId> = self.completed.iter().copied().collect();
        set.extend(self.aida.completed_parts());
        self.completed = set.into_iter().collect();
    }
}

/// Fold a journal into the state it describes.
///
/// Pure: drives a scratch [`AidaManager`] (built with `merge_fan_in` /
/// `merge_parallelism` so bucketing matches the live plane) and never
/// touches engines, sockets, or the filesystem. `SessionCreated` and
/// `Snapshot` records reset the fold — which is also what makes replay
/// idempotent: replaying a log twice equals replaying it once, because the
/// second pass begins by resetting to the first record's state.
pub fn replay(
    events: &[JournalEvent],
    merge_fan_in: usize,
    merge_parallelism: usize,
) -> RecoveredState {
    let mut st = RecoveredState {
        session: 0,
        subject: String::new(),
        engines: 0,
        dataset: None,
        code: None,
        epoch: 0,
        state: RunState::Idle,
        completed: Vec::new(),
        aida: AidaManager::with_merge_config(merge_fan_in, merge_parallelism),
    };
    for ev in events {
        match ev {
            JournalEvent::SessionCreated {
                session,
                subject,
                engines,
            } => {
                st = RecoveredState {
                    session: *session,
                    subject: subject.clone(),
                    engines: *engines,
                    dataset: None,
                    code: None,
                    epoch: 0,
                    state: RunState::Idle,
                    completed: Vec::new(),
                    aida: AidaManager::with_merge_config(merge_fan_in, merge_parallelism),
                };
            }
            JournalEvent::Snapshot(s) => {
                let mut aida = AidaManager::with_merge_config(merge_fan_in, merge_parallelism);
                aida.import(s.results.clone());
                st = RecoveredState {
                    session: s.session,
                    subject: s.subject.clone(),
                    engines: s.engines,
                    dataset: s.dataset.clone(),
                    code: s.code.clone(),
                    epoch: s.epoch,
                    state: s.state,
                    completed: s.completed.clone(),
                    aida,
                };
            }
            JournalEvent::DatasetSelected { id } => st.dataset = Some(id.clone()),
            JournalEvent::CodeLoaded { code } => st.code = Some(code.clone()),
            JournalEvent::EpochBumped { epoch } => {
                st.epoch = *epoch;
                st.aida.begin_epoch(*epoch);
                st.completed.clear();
                // Every epoch bump is immediately followed by a queue
                // re-stage, which leaves the session Idle.
                st.state = RunState::Idle;
            }
            JournalEvent::RunStarted => st.state = RunState::Running,
            JournalEvent::RunPaused => {
                if st.state == RunState::Running {
                    st.state = RunState::Paused;
                }
            }
            JournalEvent::RunStopped => st.state = RunState::Stopped,
            JournalEvent::Rewound => {} // its EpochBumped does the work
            JournalEvent::PartCompleted { part, epoch } => {
                if *epoch == st.epoch {
                    st.completed.push(*part);
                }
            }
            JournalEvent::ResultUpdate { part, update } => {
                // Mirror the live publish exactly (epoch/seq/engine guards
                // included) so the accumulators converge bit-for-bit.
                st.aida.publish(*part, update.clone());
            }
            JournalEvent::PartInvalidated { part } => st.aida.invalidate(*part),
            JournalEvent::LeaseChanged { engines } => st.engines = *engines,
            JournalEvent::ResultVersion { version } => {
                // The live session re-materialized its snapshot here; doing
                // the same folds the dirty set at the same point, then the
                // journaled version overrides whatever the scratch plane
                // counted (version arithmetic is not replayable — epochs
                // with non-empty snapshots bump it as a side effect).
                let _ = st.aida.snapshot();
                st.aida.force_version(*version);
            }
        }
    }
    st.finalize_completed();
    st
}

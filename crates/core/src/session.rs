//! The interactive analysis session.
//!
//! A [`Session`] is the WSRF-style stateful resource at the heart of the
//! design (§3.2): every client call happens in its context. It owns the
//! session's engines, the dataset parts, the AIDA manager, and the run
//! state; the client drives it with the paper's four steps and polls for
//! merged results ("a separate plug-in on the JAS client constantly polls
//! the AIDA manager", §3.7).
//!
//! Fault tolerance beyond the paper: a failed engine's part is invalidated
//! and re-queued at the next poll, and each engine has a retry budget
//! ([`crate::IpaConfig::max_part_retries`]) — a failed engine is kept
//! alive and handed its part again until the budget is spent, after which
//! it is declared dead and its part re-runs on a surviving engine. Results
//! never double count because merging is keyed by part.
//!
//! Every control-plane reset (`select_dataset`, `load_code`, `rewind`)
//! bumps a session-wide *run epoch*. Commands carry the epoch out to the
//! engines, engines stamp it into every event, and both [`Session::poll`]
//! and the AIDA manager drop anything from a superseded epoch — so
//! updates already queued in the event channel when the user rewinds can
//! never re-pollute the fresh run's merged results.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use crossbeam::channel::{Receiver, TryRecvError};
use ipa_aida::Tree;
use ipa_dataset::{split_even, split_records, AnyRecord, DatasetDescriptor, DatasetId};
use serde::{Deserialize, Serialize};

use crate::aida_manager::AidaManager;
use crate::analyzer::{instantiate_code, AnalysisCode, NativeRegistry};
use crate::config::IpaConfig;
use crate::engine::{EngineCommand, EngineEvent, EngineHandle, EngineId, PartId};
use crate::error::CoreError;
use crate::locator::LocatorService;
use crate::registry::{WorkerRegistry, WorkerState};

/// Run state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// No run started (or rewound).
    Idle,
    /// Engines are processing.
    Running,
    /// Paused by the user (resume with run).
    Paused,
    /// Stopped by the user.
    Stopped,
    /// All parts processed.
    Finished,
}

/// Per-engine bookkeeping.
struct EngineSlot {
    handle: EngineHandle,
    alive: bool,
    /// Part currently assigned, with completion flag.
    part: Option<(PartId, bool)>,
    /// Records completed in earlier parts (for registry progress).
    completed_records: u64,
    /// Failures absorbed by the retry budget so far this epoch.
    retries_used: u32,
}

/// One engine failure, as recorded by the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Which engine failed.
    pub engine: EngineId,
    /// The part it was processing, if any.
    pub part: Option<PartId>,
    /// Run epoch the failure happened under.
    pub epoch: u64,
    /// Failure description from the engine.
    pub message: String,
    /// Wall-clock time the session recorded the failure.
    pub at: SystemTime,
}

/// Snapshot returned by [`Session::poll`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Current run state.
    pub state: RunState,
    /// Records processed across all parts.
    pub records_processed: u64,
    /// Total records in the selected dataset.
    pub records_total: u64,
    /// Parts fully processed.
    pub parts_done: usize,
    /// Total parts.
    pub parts_total: usize,
    /// Engines still alive.
    pub engines_alive: usize,
    /// Run epoch this snapshot belongs to (bumped by `select_dataset`,
    /// `load_code`, and `rewind`).
    pub epoch: u64,
    /// Log lines collected since the last poll.
    pub new_logs: Vec<(EngineId, String)>,
}

impl SessionStatus {
    /// Completion fraction in `[0, 1]` (1 when the dataset is empty).
    pub fn progress(&self) -> f64 {
        if self.records_total == 0 {
            1.0
        } else {
            self.records_processed as f64 / self.records_total as f64
        }
    }
}

/// An interactive parallel analysis session.
pub struct Session {
    id: u64,
    subject: String,
    engines: Vec<EngineSlot>,
    events: Receiver<EngineEvent>,
    aida: AidaManager,
    locator: LocatorService,
    config: IpaConfig,

    dataset: Option<DatasetDescriptor>,
    parts: Vec<Arc<Vec<AnyRecord>>>,
    pending: VecDeque<PartId>,
    code: Option<AnalysisCode>,
    state: RunState,
    epoch: u64,
    logs: Vec<(EngineId, String)>,
    failures: Vec<FailureRecord>,
    registry: WorkerRegistry,
    closed: bool,
}

impl Session {
    pub(crate) fn new(
        id: u64,
        subject: String,
        engines: Vec<EngineHandle>,
        events: Receiver<EngineEvent>,
        locator: LocatorService,
        config: IpaConfig,
        registry: WorkerRegistry,
    ) -> Self {
        Session {
            id,
            subject,
            engines: engines
                .into_iter()
                .map(|handle| EngineSlot {
                    handle,
                    alive: true,
                    part: None,
                    completed_records: 0,
                    retries_used: 0,
                })
                .collect(),
            events,
            aida: AidaManager::new(),
            locator,
            config,
            dataset: None,
            parts: Vec::new(),
            pending: VecDeque::new(),
            code: None,
            state: RunState::Idle,
            epoch: 0,
            logs: Vec::new(),
            failures: Vec::new(),
            registry,
            closed: false,
        }
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Authenticated subject this session belongs to.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Number of engines (alive or not).
    pub fn engines(&self) -> usize {
        self.engines.len()
    }

    /// Engines still alive.
    pub fn engines_alive(&self) -> usize {
        self.engines.iter().filter(|e| e.alive).count()
    }

    /// The selected dataset, if any.
    pub fn dataset(&self) -> Option<&DatasetDescriptor> {
        self.dataset.as_ref()
    }

    /// Engine failures recorded so far (current-epoch only).
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Current run epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new run epoch: merged results and progress counters reset,
    /// retry budgets refill, and any event still in flight from the old
    /// epoch will be dropped on arrival.
    fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.aida.begin_epoch(self.epoch);
        self.registry.reset_progress(self.id);
        for slot in self.engines.iter_mut() {
            slot.completed_records = 0;
            slot.retries_used = 0;
        }
    }

    fn check_open(&self) -> Result<(), CoreError> {
        if self.closed {
            Err(CoreError::SessionClosed)
        } else {
            Ok(())
        }
    }

    /// Wait for every engine's ready signal (called by the manager right
    /// after spawning).
    pub(crate) fn wait_ready(&mut self) -> Result<(), CoreError> {
        let mut ready = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while ready < self.engines.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.events.recv_timeout(remaining) {
                Ok(EngineEvent::Ready { .. }) => ready += 1,
                Ok(other) => self.absorb(other),
                Err(_) => return Err(CoreError::EngineGone(ready)),
            }
        }
        Ok(())
    }

    /// Step 2: choose a dataset. Resolves the id through the locator,
    /// splits it into one part per engine, and stages the parts.
    pub fn select_dataset(&mut self, id: &DatasetId) -> Result<(), CoreError> {
        self.check_open()?;
        self.locator.locate(id)?;
        let ds = self.locator.fetch(id)?;
        let n = self.engines_alive().max(1);
        let (parts, _plan) = if self.config.byte_balanced_split {
            split_records(&ds.records, n)
        } else {
            split_even(&ds.records, n)
        }
        .map_err(|e| CoreError::Staging(e.to_string()))?;

        self.parts = parts.into_iter().map(Arc::new).collect();
        self.dataset = Some(ds.descriptor.clone());
        self.bump_epoch();
        self.pending.clear();
        self.state = RunState::Idle;

        // Stage part k onto the k-th living engine.
        let epoch = self.epoch;
        let mut part_iter = 0u64;
        for slot in self.engines.iter_mut() {
            slot.part = None;
            if !slot.alive {
                continue;
            }
            if (part_iter as usize) < self.parts.len() {
                let records = self.parts[part_iter as usize].clone();
                slot.handle.send(EngineCommand::AssignPart {
                    part: part_iter,
                    records,
                    epoch,
                });
                slot.part = Some((part_iter, false));
                part_iter += 1;
            } else {
                // No part for this engine: quiesce it. It keeps its old
                // epoch, so anything it might still publish is dropped.
                slot.handle.send(EngineCommand::Stop);
            }
        }
        // Any parts beyond the number of living engines wait in the queue.
        for p in part_iter..self.parts.len() as u64 {
            self.pending.push_back(p);
        }
        Ok(())
    }

    /// Step 3a: ship analysis code to every engine. The code is validated
    /// locally first so syntax errors surface immediately; loading resets
    /// any run in progress (paper §3.6: edit, reload, reprocess).
    pub fn load_code(&mut self, code: AnalysisCode) -> Result<(), CoreError> {
        self.check_open()?;
        // Validate before shipping (scripts compile; natives must exist on
        // the engines' registry, which mirrors this one).
        instantiate_code(&code, &self.local_registry())?;
        self.bump_epoch();
        let epoch = self.epoch;
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::LoadCode {
                code: code.clone(),
                epoch,
            });
            if let Some((_, done)) = &mut slot.part {
                *done = false;
            }
        }
        self.code = Some(code);
        self.state = RunState::Idle;
        Ok(())
    }

    // Engines hold the authoritative registry; the session only needs one
    // for validation. Natives are validated engine-side anyway, so an
    // empty registry would only delay the error — we use the builtin set.
    fn local_registry(&self) -> NativeRegistry {
        crate::analyzer::builtin_registry()
    }

    /// Step 3b: start (or resume) the analysis run.
    pub fn run(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        if self.dataset.is_none() {
            return Err(CoreError::NoDataset);
        }
        if self.code.is_none() {
            return Err(CoreError::NoCode);
        }
        if self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }
        for slot in self.engines.iter().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::Run);
        }
        self.state = RunState::Running;
        Ok(())
    }

    /// "Run specific no of events": each engine processes at most `n`
    /// further records, then pauses.
    pub fn run_events(&mut self, n: usize) -> Result<(), CoreError> {
        self.check_open()?;
        if self.dataset.is_none() {
            return Err(CoreError::NoDataset);
        }
        if self.code.is_none() {
            return Err(CoreError::NoCode);
        }
        if self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }
        for slot in self.engines.iter().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::RunN(n));
        }
        self.state = RunState::Running;
        Ok(())
    }

    /// Pause the run (resume with [`Session::run`]).
    pub fn pause(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        for slot in self.engines.iter().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::Pause);
        }
        if self.state == RunState::Running {
            self.state = RunState::Paused;
        }
        Ok(())
    }

    /// Stop the run. Unlike [`Session::pause`], engines drop their
    /// position: a later [`Session::run`] restarts each part from record
    /// 0 rather than resuming mid-way. Results merged so far stay visible
    /// until fresh updates replace them (use [`Session::rewind`] to also
    /// reset the merged results).
    pub fn stop(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::Stop);
            if let Some((_, done)) = &mut slot.part {
                *done = false;
            }
        }
        self.state = RunState::Stopped;
        Ok(())
    }

    /// Rewind to the start of the dataset: all parts go back to record 0,
    /// merged results reset.
    pub fn rewind(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        self.bump_epoch();
        self.pending.clear();
        // Re-stage original parts onto living engines. Staging halts the
        // engine and moves it to the new epoch; updates it published
        // before the re-stage carry the old epoch and are dropped.
        let epoch = self.epoch;
        let mut next_part = 0u64;
        for slot in self.engines.iter_mut() {
            slot.part = None;
            if !slot.alive {
                continue;
            }
            if (next_part as usize) < self.parts.len() {
                slot.handle.send(EngineCommand::AssignPart {
                    part: next_part,
                    records: self.parts[next_part as usize].clone(),
                    epoch,
                });
                slot.part = Some((next_part, false));
                next_part += 1;
            } else {
                slot.handle.send(EngineCommand::Stop);
            }
        }
        for p in next_part..self.parts.len() as u64 {
            self.pending.push_back(p);
        }
        self.state = RunState::Idle;
        Ok(())
    }

    fn absorb(&mut self, ev: EngineEvent) {
        match ev {
            EngineEvent::Ready { .. } => {}
            EngineEvent::CodeLoaded { .. } => {}
            EngineEvent::CodeError {
                engine,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                self.failures.push(FailureRecord {
                    engine,
                    part: None,
                    epoch,
                    message: format!("code error: {message}"),
                    at: SystemTime::now(),
                });
            }
            EngineEvent::Update { part, update } => {
                if update.epoch != self.epoch {
                    // In flight when the run was reset; the part ids have
                    // been reused by the new epoch, so merging this would
                    // silently re-pollute the fresh results.
                    return;
                }
                if let Some(slot) = self.engines.get_mut(update.engine) {
                    let mut newly_done = false;
                    if let Some((pid, done)) = &mut slot.part {
                        if *pid == part {
                            newly_done = update.done && !*done;
                            *done = update.done;
                        }
                    }
                    // Count a part into the engine's completed tally only
                    // on the not-done -> done transition, so a re-published
                    // done update cannot inflate registry progress.
                    if newly_done {
                        slot.completed_records += update.total;
                    }
                    let total = if update.done {
                        slot.completed_records
                    } else {
                        slot.completed_records + update.processed
                    };
                    self.registry.update_worker(
                        self.id,
                        update.engine,
                        if update.done {
                            WorkerState::Idle
                        } else {
                            WorkerState::Busy
                        },
                        Some(total),
                    );
                }
                self.aida.publish(part, update);
            }
            EngineEvent::Failed {
                engine,
                part,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                // Spend the retry budget before declaring the engine dead:
                // the part is re-queued either way (dispatch_pending will
                // hand it back to this engine, or to a survivor).
                let retry = self
                    .engines
                    .get(engine)
                    .map(|s| s.alive && s.retries_used < self.config.max_part_retries)
                    .unwrap_or(false);
                self.failures.push(FailureRecord {
                    engine,
                    part,
                    epoch,
                    message,
                    at: SystemTime::now(),
                });
                if let Some(slot) = self.engines.get_mut(engine) {
                    slot.part = None;
                    if retry {
                        slot.retries_used += 1;
                    } else {
                        slot.alive = false;
                    }
                }
                self.registry.update_worker(
                    self.id,
                    engine,
                    if retry {
                        WorkerState::Idle
                    } else {
                        WorkerState::Failed
                    },
                    None,
                );
                if let Some(p) = part {
                    self.aida.invalidate(p);
                    self.pending.push_back(p);
                }
            }
            EngineEvent::Log {
                engine,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                self.logs.push((engine, message));
            }
        }
    }

    /// Hand queued parts to living engines whose current part is done (or
    /// who have none).
    fn dispatch_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        for slot in self.engines.iter_mut() {
            if self.pending.is_empty() {
                break;
            }
            if !slot.alive {
                continue;
            }
            let idle = match slot.part {
                None => true,
                Some((_, done)) => done,
            };
            if idle {
                let part = self.pending.pop_front().expect("non-empty");
                slot.handle.send(EngineCommand::AssignPart {
                    part,
                    records: self.parts[part as usize].clone(),
                    epoch: self.epoch,
                });
                if self.state == RunState::Running {
                    slot.handle.send(EngineCommand::Run);
                }
                slot.part = Some((part, false));
            }
        }
    }

    /// Drain engine events, run failure recovery, and return a status
    /// snapshot. This is the client's polling entry point.
    pub fn poll(&mut self) -> Result<SessionStatus, CoreError> {
        self.check_open()?;
        loop {
            match self.events.try_recv() {
                Ok(ev) => self.absorb(ev),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        self.dispatch_pending();

        let parts_total = self.parts.len();
        let parts_done = self.aida.parts_done();
        if parts_total > 0 && parts_done == parts_total && self.state == RunState::Running {
            self.state = RunState::Finished;
        }
        if self.state == RunState::Running && self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }

        Ok(SessionStatus {
            state: self.state,
            records_processed: self.aida.records_processed(),
            records_total: self.parts.iter().map(|p| p.len() as u64).sum(),
            parts_done,
            parts_total,
            engines_alive: self.engines_alive(),
            epoch: self.epoch,
            new_logs: std::mem::take(&mut self.logs),
        })
    }

    /// Merged results as of the last poll.
    pub fn results(&mut self) -> Result<Tree, CoreError> {
        self.aida.merged()
    }

    /// Merged results through the two-level merger (paper §2.5 extension).
    pub fn results_hierarchical(&mut self, fan_in: usize) -> Result<Tree, CoreError> {
        self.aida.merged_hierarchical(fan_in)
    }

    /// Poll until the run finishes (or fails). If the deadline passes
    /// first, returns [`CoreError::Timeout`] carrying the last status
    /// snapshot — a timeout is never mistakable for success.
    pub fn wait_finished(&mut self, timeout: Duration) -> Result<SessionStatus, CoreError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.poll()?;
            if status.state == RunState::Finished {
                return Ok(status);
            }
            if Instant::now() > deadline {
                return Err(CoreError::Timeout(status));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Estimate what staging + analyzing the *currently selected* dataset
    /// would cost on a 2006-calibre grid site: bridges the live framework
    /// to the `ipa-simgrid` cost model using the session's real dataset
    /// size and engine count.
    pub fn staging_report(
        &self,
        cal: &ipa_simgrid::PaperCalibration,
    ) -> Result<ipa_simgrid::StageBreakdown, CoreError> {
        let ds = self.dataset.as_ref().ok_or(CoreError::NoDataset)?;
        Ok(ipa_simgrid::simulate_session(
            ds.size_mb(),
            self.engines_alive().max(1),
            cal,
        ))
    }

    /// Failure injection (tests / chaos drills): make engine `engine` die
    /// after processing `after_records` more records. The session will
    /// detect the failure at poll time and re-queue the engine's part.
    pub fn inject_failure(&mut self, engine: EngineId, after_records: u64) {
        if let Some(slot) = self.engines.get(engine) {
            slot.handle.send(EngineCommand::FailAfter(after_records));
        }
    }

    /// End the session: engines shut down and join (paper §2.3: engines
    /// "should be started for each session and be shutdown at the end of a
    /// session").
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        for slot in &mut self.engines {
            slot.handle.shutdown();
            slot.alive = false;
        }
        self.registry.close_session(self.id);
        self.closed = true;
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

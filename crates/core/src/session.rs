//! The interactive analysis session.
//!
//! A [`Session`] is the WSRF-style stateful resource at the heart of the
//! design (§3.2): every client call happens in its context. It owns the
//! session's engines, the dataset parts, the AIDA manager, and the run
//! state; the client drives it with the paper's four steps and polls for
//! merged results ("a separate plug-in on the JAS client constantly polls
//! the AIDA manager", §3.7).
//!
//! Fault tolerance beyond the paper: a failed engine's part is invalidated
//! and re-queued at the next poll, and each engine has a retry budget
//! ([`crate::IpaConfig::max_part_retries`]) — a failed engine is kept
//! alive and handed its part again until the budget is spent, after which
//! it is declared dead and its part re-runs on a surviving engine. Results
//! never double count because merging is keyed by part.
//!
//! Every control-plane reset (`select_dataset`, `load_code`, `rewind`)
//! bumps a session-wide *run epoch*. Commands carry the epoch out to the
//! engines, engines stamp it into every event, and both [`Session::poll`]
//! and the AIDA manager drop anything from a superseded epoch — so
//! updates already queued in the event channel when the user rewinds can
//! never re-pollute the fresh run's merged results.
//!
//! Scheduling is pluggable ([`crate::IpaConfig::scheduler`]): the paper's
//! static one-part-per-engine split, or the pull-based policies from
//! [`crate::sched`] that over-partition into micro-parts, let fast
//! engines steal queued work, and speculatively re-execute a straggler's
//! part on an idle engine — first completion wins, the loser's late
//! updates are dropped by part-dedup (see [`crate::sched::PartQueue`]).

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use ipa_aida::Tree;
use ipa_dataset::{AnyRecord, ColumnBatch, DatasetDescriptor, DatasetId};
use serde::{Deserialize, Serialize};

use crate::aida_manager::{AidaManager, PublishOutcome, ResultPlaneStats};
use crate::analyzer::{instantiate_code, AnalysisCode, NativeRegistry};
use crate::config::IpaConfig;
use crate::engine::{EngineCommand, EngineEvent, EngineHandle, EngineId, PartId};
use crate::error::CoreError;
use crate::journal::{JournalEvent, RecoveredState, SessionJournal, SessionSnapshot};
use crate::pool::EnginePool;
use crate::registry::{WorkerRegistry, WorkerState};
use crate::sched::{CompletionOutcome, PartQueue, SchedStats, SchedulerPolicy, WorkerLedger};
use crate::staging::{pipeline::StageFaultPlan, DatasetPlane, SplitSpec, StagingStats};

/// Run state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// No run started (or rewound).
    Idle,
    /// Engines are processing.
    Running,
    /// Paused by the user (resume with run).
    Paused,
    /// Stopped by the user.
    Stopped,
    /// All parts processed.
    Finished,
}

/// Per-engine bookkeeping.
struct EngineSlot {
    handle: EngineHandle,
    alive: bool,
    /// Part currently assigned, with completion flag.
    part: Option<(PartId, bool)>,
    /// Records reported processed in the current part so far (the last
    /// cumulative `processed` stamp) — the baseline for progress deltas.
    part_progress: u64,
    /// Remaining run-N budget carried across part boundaries under the
    /// pull policies; `None` = unbounded run, `Some(0)` = exhausted.
    budget_left: Option<usize>,
    /// Records completed in earlier parts (for registry progress).
    completed_records: u64,
    /// Failures absorbed by the retry budget so far this epoch.
    retries_used: u32,
}

/// One engine failure, as recorded by the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Which engine failed.
    pub engine: EngineId,
    /// The part it was processing, if any.
    pub part: Option<PartId>,
    /// Run epoch the failure happened under.
    pub epoch: u64,
    /// Failure description from the engine.
    pub message: String,
    /// Wall-clock time the session recorded the failure.
    pub at: SystemTime,
}

/// Snapshot returned by [`Session::poll`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Current run state.
    pub state: RunState,
    /// Records processed across all parts.
    pub records_processed: u64,
    /// Total records in the selected dataset.
    pub records_total: u64,
    /// Parts fully processed.
    pub parts_done: usize,
    /// Total parts.
    pub parts_total: usize,
    /// Engines still alive.
    pub engines_alive: usize,
    /// Run epoch this snapshot belongs to (bumped by `select_dataset`,
    /// `load_code`, and `rewind`).
    pub epoch: u64,
    /// Scheduler counters and per-engine throughput for this epoch.
    pub sched: SchedStats,
    /// Result-plane counters: snapshot version, dirty parts, merge work
    /// performed vs. saved by the cache, delta/checkpoint traffic.
    pub results: ResultPlaneStats,
    /// Staging-plane counters: parts/bytes/chunks moved, split-cache
    /// hits, transfer retries, and the last stage's phase timings.
    #[serde(default)]
    pub staging: StagingStats,
    /// Log lines collected since the last poll.
    pub new_logs: Vec<(EngineId, String)>,
}

impl SessionStatus {
    /// Completion fraction in `[0, 1]` (1 when the dataset is empty).
    pub fn progress(&self) -> f64 {
        if self.records_total == 0 {
            1.0
        } else {
            self.records_processed as f64 / self.records_total as f64
        }
    }
}

/// An interactive parallel analysis session.
pub struct Session {
    id: u64,
    subject: String,
    engines: Vec<EngineSlot>,
    events: Receiver<EngineEvent>,
    aida: AidaManager,
    plane: Box<dyn DatasetPlane>,
    config: IpaConfig,

    dataset: Option<DatasetDescriptor>,
    /// The dataset id exactly as the client supplied it (including
    /// `"<base>@<first>..<last>"` range views) — what the journal records
    /// and recovery re-stages through the locator.
    dataset_source: Option<String>,
    parts: Vec<Arc<Vec<AnyRecord>>>,
    /// Columnar transcodes parallel to `parts` (`None` per part under the
    /// row layout or when a part cannot transcode); shared with engines on
    /// every assignment so rewind/re-assign reuse them with zero copies.
    part_columns: Vec<Option<Arc<ColumnBatch>>>,
    queue: PartQueue,
    ledger: WorkerLedger,
    stats: SchedStats,
    code: Option<AnalysisCode>,
    state: RunState,
    epoch: u64,
    logs: Vec<(EngineId, String)>,
    failures: Vec<FailureRecord>,
    registry: WorkerRegistry,
    /// Write-ahead log of this session's transitions (None = journal off;
    /// every hook is a no-op and behavior matches the journal-free build).
    journal: Option<SessionJournal>,
    /// The shared pool these engines are leased from (None = the session
    /// owns its engine threads outright). Enables part-boundary lease
    /// revocation when other sessions are short.
    pool: Option<EnginePool>,
    /// Leases returned to the pool under revocation so far — engine slots
    /// still occupy `engines` (ids are positional) but are dead.
    released_engines: usize,
    closed: bool,
}

impl Session {
    pub(crate) fn new(
        id: u64,
        subject: String,
        engines: Vec<EngineHandle>,
        events: Receiver<EngineEvent>,
        plane: Box<dyn DatasetPlane>,
        config: IpaConfig,
        registry: WorkerRegistry,
    ) -> Self {
        // Apply configured per-engine slowdowns (straggler experiments).
        for (i, handle) in engines.iter().enumerate() {
            if let Some(&f) = config.speed_factors.get(i) {
                if f > 1.0 {
                    handle.send(EngineCommand::Throttle(f));
                }
            }
        }
        let n = engines.len();
        let mut ledger = WorkerLedger::default();
        ledger.reset(n);
        Session {
            id,
            subject,
            engines: engines
                .into_iter()
                .map(|handle| EngineSlot {
                    handle,
                    alive: true,
                    part: None,
                    part_progress: 0,
                    budget_left: None,
                    completed_records: 0,
                    retries_used: 0,
                })
                .collect(),
            events,
            aida: AidaManager::with_merge_config(config.merge_fan_in, config.merge_parallelism),
            plane,
            stats: SchedStats {
                policy: config.scheduler,
                ..SchedStats::default()
            },
            config,
            dataset: None,
            dataset_source: None,
            parts: Vec::new(),
            part_columns: Vec::new(),
            queue: PartQueue::default(),
            ledger,
            code: None,
            state: RunState::Idle,
            epoch: 0,
            logs: Vec::new(),
            failures: Vec::new(),
            registry,
            journal: None,
            pool: None,
            released_engines: 0,
            closed: false,
        }
    }

    /// Attach the shared engine pool this session leases from (set by the
    /// manager when `IpaConfig::engine_pool` is on). From then on every
    /// poll honors pending lease revocations at part boundaries.
    pub(crate) fn attach_pool(&mut self, pool: EnginePool) {
        self.pool = Some(pool);
    }

    /// Attach a write-ahead journal and record the session's creation.
    /// Called by the manager right after spawn when journaling is on;
    /// also public so tests can attach a memory-backed journal.
    pub fn attach_journal(&mut self, journal: SessionJournal) {
        self.journal = Some(journal);
        self.journal_event(JournalEvent::SessionCreated {
            session: self.id,
            subject: self.subject.clone(),
            engines: self.engines.len(),
        });
    }

    /// Journal appends that failed (0 when journaling is off). Best-effort
    /// durability: failures degrade recoverability, never the live run.
    pub fn journal_append_errors(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.append_errors())
    }

    /// Append `ev` to the journal (no-op with journaling off), compacting
    /// the log down to a single snapshot record when the append counter
    /// crosses [`crate::IpaConfig::compact_every`].
    fn journal_event(&mut self, ev: JournalEvent) {
        let should_compact = match self.journal.as_mut() {
            Some(journal) => {
                journal.append(&ev);
                journal.should_compact()
            }
            None => return,
        };
        if should_compact {
            let snapshot = self.session_snapshot();
            if let Some(journal) = self.journal.as_mut() {
                journal.compact(&snapshot);
            }
        }
    }

    /// Complete recoverable state at this instant (compaction record).
    fn session_snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            session: self.id,
            subject: self.subject.clone(),
            engines: self.engines.len() - self.released_engines,
            dataset: self.dataset_source.clone(),
            code: self.code.clone(),
            epoch: self.epoch,
            state: self.state,
            completed: self.queue.completed_parts(),
            results: self.aida.export(),
        }
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Authenticated subject this session belongs to.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Number of engines (alive or not).
    pub fn engines(&self) -> usize {
        self.engines.len()
    }

    /// Engines still alive.
    pub fn engines_alive(&self) -> usize {
        self.engines.iter().filter(|e| e.alive).count()
    }

    /// The selected dataset, if any.
    pub fn dataset(&self) -> Option<&DatasetDescriptor> {
        self.dataset.as_ref()
    }

    /// Engine failures recorded so far (current-epoch only).
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Current run epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new run epoch: merged results and progress counters reset,
    /// retry budgets refill, throughput history and scheduler counters
    /// clear, and any event still in flight from the old epoch will be
    /// dropped on arrival.
    fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.aida.begin_epoch(self.epoch);
        self.registry.reset_progress(self.id);
        self.ledger.reset(self.engines.len());
        self.stats = SchedStats {
            policy: self.config.scheduler,
            ..SchedStats::default()
        };
        for slot in self.engines.iter_mut() {
            slot.completed_records = 0;
            slot.retries_used = 0;
        }
        self.journal_event(JournalEvent::EpochBumped { epoch: self.epoch });
    }

    fn check_open(&self) -> Result<(), CoreError> {
        if self.closed {
            Err(CoreError::SessionClosed)
        } else {
            Ok(())
        }
    }

    /// Wait for every engine's ready signal (called by the manager right
    /// after spawning). A timeout with engines merely slow reports
    /// [`CoreError::StartupTimeout`] (how many were ready vs. expected);
    /// a broken event channel — the engines actually died — still reports
    /// [`CoreError::EngineGone`].
    pub(crate) fn wait_ready(&mut self) -> Result<(), CoreError> {
        let mut ready = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while ready < self.engines.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.events.recv_timeout(remaining) {
                Ok(EngineEvent::Ready { .. }) => ready += 1,
                Ok(other) => self.absorb(other),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::StartupTimeout {
                        ready,
                        expected: self.engines.len(),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CoreError::EngineGone(ready)),
            }
        }
        Ok(())
    }

    /// Rebuild a live session around journal-replayed state (the manager's
    /// crash-recovery path). Fresh engines are spawned by the caller; this
    /// re-stages the dataset through the staging plane (the split cache
    /// makes that O(parts) for a dataset staged before the crash), restores
    /// the run epoch *without* bumping it, ships the loaded code, installs
    /// the recovered result plane verbatim, and re-queues every part not
    /// durably completed. A session that was `Running` comes back `Paused`
    /// — the client resumes explicitly with `run` — or `Finished` when
    /// every part had already completed. The journal (if any) is rewritten
    /// as a single compacted snapshot so crash/recover cycles cannot
    /// accrete history.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recover(
        id: u64,
        rec: RecoveredState,
        engines: Vec<EngineHandle>,
        events: Receiver<EngineEvent>,
        plane: Box<dyn DatasetPlane>,
        config: IpaConfig,
        registry: WorkerRegistry,
        journal: Option<SessionJournal>,
    ) -> Result<Session, CoreError> {
        let mut s = Session::new(
            id,
            rec.subject.clone(),
            engines,
            events,
            plane,
            config,
            registry,
        );
        s.wait_ready()?;
        if let Some(ds_id) = &rec.dataset {
            let alive = s.engines_alive();
            if alive == 0 {
                return Err(CoreError::AllEnginesFailed);
            }
            // Same engine count as creation → same split → the replayed
            // part ids line up with the re-staged parts.
            let spec = SplitSpec::from_config(&s.config, alive);
            let staged = s.plane.stage(&DatasetId::new(ds_id.clone()), &spec)?;
            s.parts = staged.parts;
            s.part_columns = staged.columns;
            s.dataset = Some(staged.descriptor);
            s.dataset_source = Some(ds_id.clone());
        }
        // Replay owns the epoch counter: restore, never bump (a bump would
        // orphan the recovered results under a superseded epoch).
        s.epoch = rec.epoch;
        if let Some(code) = &rec.code {
            let epoch = s.epoch;
            for slot in s.engines.iter_mut().filter(|sl| sl.alive) {
                slot.handle.send(EngineCommand::LoadCode {
                    code: code.clone(),
                    epoch,
                });
            }
            s.code = Some(code.clone());
        }
        s.aida = rec.aida;
        s.queue.stage(s.parts.len());
        s.stats.parts_queued = s.parts.len() as u64;
        for &p in &rec.completed {
            if (p as usize) < s.parts.len() {
                s.queue.mark_recovered_complete(p);
            }
        }
        // Hand each engine its first incomplete part (mirror of restage).
        // The first publish of a fresh assignment is always a checkpoint,
        // so a re-run part replaces any replayed partial accumulator
        // instead of double counting into it.
        let epoch = s.epoch;
        for (idx, slot) in s.engines.iter_mut().enumerate() {
            if !slot.alive {
                continue;
            }
            match s.queue.pop(idx) {
                Some(part) => {
                    slot.handle.send(EngineCommand::AssignPart {
                        part,
                        records: s.parts[part as usize].clone(),
                        columns: s.part_columns[part as usize].clone(),
                        epoch,
                    });
                    slot.part = Some((part, false));
                }
                None => {
                    slot.handle.send(EngineCommand::Stop);
                }
            }
        }
        let all_done = !s.parts.is_empty() && s.queue.completed_len() == s.parts.len();
        s.state = match rec.state {
            RunState::Running if all_done => RunState::Finished,
            RunState::Running => RunState::Paused,
            other => other,
        };
        if let Some(mut journal) = journal {
            journal.compact(&s.session_snapshot());
            s.journal = Some(journal);
        }
        Ok(s)
    }

    /// Step 2: choose a dataset. The whole dataset path goes through the
    /// staging plane ([`crate::staging::DatasetPlane`]): the locator
    /// resolves the id (plain or `"<base>@<first>..<last>"` range view),
    /// the split cache answers repeats in O(parts), and the pipelined
    /// stager cuts and delivers parts under the session's [`SplitSpec`] —
    /// one ~equal part per engine under `Static`, `engines × oversub`
    /// micro-parts under the pull policies.
    ///
    /// With zero living engines this fails with
    /// [`CoreError::AllEnginesFailed`] instead of silently splitting into
    /// one part nobody will run. A terminal transfer failure surfaces as
    /// [`CoreError::StagingFailure`] *before* any epoch bump, so the
    /// session stays consistent on its previous dataset.
    pub fn select_dataset(&mut self, id: &DatasetId) -> Result<(), CoreError> {
        self.check_open()?;
        let alive = self.engines_alive();
        if alive == 0 {
            return Err(CoreError::AllEnginesFailed);
        }
        let spec = SplitSpec::from_config(&self.config, alive);
        let staged = self.plane.stage(id, &spec)?;
        self.parts = staged.parts;
        self.part_columns = staged.columns;
        self.dataset = Some(staged.descriptor);
        self.dataset_source = Some(id.to_string());
        self.restage();
        self.journal_event(JournalEvent::DatasetSelected { id: id.to_string() });
        Ok(())
    }

    /// Start a fresh epoch over the current `parts`: stage the queue and
    /// hand each living engine its first part. Engines that get no part
    /// are quiesced (they keep their old epoch, so anything they might
    /// still publish is dropped). Shared by `select_dataset`, `load_code`,
    /// and `rewind` — under micro-partitioning every reset must rebuild
    /// the whole queue, not just the parts engines currently hold.
    fn restage(&mut self) {
        self.bump_epoch();
        self.queue.stage(self.parts.len());
        self.stats.parts_queued = self.parts.len() as u64;
        let epoch = self.epoch;
        for (idx, slot) in self.engines.iter_mut().enumerate() {
            slot.part = None;
            slot.part_progress = 0;
            slot.budget_left = None;
            if !slot.alive {
                continue;
            }
            match self.queue.pop(idx) {
                Some(part) => {
                    slot.handle.send(EngineCommand::AssignPart {
                        part,
                        records: self.parts[part as usize].clone(),
                        columns: self.part_columns[part as usize].clone(),
                        epoch,
                    });
                    slot.part = Some((part, false));
                }
                None => {
                    slot.handle.send(EngineCommand::Stop);
                }
            }
        }
        self.state = RunState::Idle;
    }

    /// Step 3a: ship analysis code to every engine. The code is validated
    /// locally first so syntax errors surface immediately; loading resets
    /// any run in progress (paper §3.6: edit, reload, reprocess).
    pub fn load_code(&mut self, code: AnalysisCode) -> Result<(), CoreError> {
        self.check_open()?;
        // Validate before shipping (scripts compile; natives must exist on
        // the engines' registry, which mirrors this one).
        instantiate_code(
            &code,
            &self.local_registry(),
            self.config.script_backend,
            self.config.script_fusion,
        )?;
        if !self.parts.is_empty() {
            // Re-stage so the new code reprocesses the *whole* dataset:
            // under micro-partitioning the engines only hold the parts
            // they were last running, the rest live in the queue.
            self.restage();
        } else {
            self.bump_epoch();
            self.state = RunState::Idle;
        }
        let epoch = self.epoch;
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::LoadCode {
                code: code.clone(),
                epoch,
            });
        }
        self.journal_event(JournalEvent::CodeLoaded { code: code.clone() });
        self.code = Some(code);
        Ok(())
    }

    // Engines hold the authoritative registry; the session only needs one
    // for validation. Natives are validated engine-side anyway, so an
    // empty registry would only delay the error — we use the builtin set.
    fn local_registry(&self) -> NativeRegistry {
        crate::analyzer::builtin_registry()
    }

    /// Step 3b: start (or resume) the analysis run.
    pub fn run(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        if self.dataset.is_none() {
            return Err(CoreError::NoDataset);
        }
        if self.code.is_none() {
            return Err(CoreError::NoCode);
        }
        if self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.budget_left = None;
            slot.handle.send(EngineCommand::Run);
        }
        self.state = RunState::Running;
        self.journal_event(JournalEvent::RunStarted);
        Ok(())
    }

    /// "Run specific no of events": each engine processes at most `n`
    /// further records, then pauses. Under the pull policies the budget
    /// carries across part boundaries — an engine that finishes a
    /// micro-part with budget left pulls the next part and keeps going.
    pub fn run_events(&mut self, n: usize) -> Result<(), CoreError> {
        self.check_open()?;
        if self.dataset.is_none() {
            return Err(CoreError::NoDataset);
        }
        if self.code.is_none() {
            return Err(CoreError::NoCode);
        }
        if self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.budget_left = Some(n);
            slot.handle.send(EngineCommand::RunN(n));
        }
        self.state = RunState::Running;
        self.journal_event(JournalEvent::RunStarted);
        Ok(())
    }

    /// Pause the run (resume with [`Session::run`]).
    pub fn pause(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        for slot in self.engines.iter().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::Pause);
        }
        if self.state == RunState::Running {
            self.state = RunState::Paused;
        }
        self.journal_event(JournalEvent::RunPaused);
        Ok(())
    }

    /// Stop the run. Unlike [`Session::pause`], engines drop their
    /// position: a later [`Session::run`] restarts each part from record
    /// 0 rather than resuming mid-way. Results merged so far stay visible
    /// until fresh updates replace them (use [`Session::rewind`] to also
    /// reset the merged results).
    pub fn stop(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        for slot in self.engines.iter_mut().filter(|s| s.alive) {
            slot.handle.send(EngineCommand::Stop);
            if let Some((_, done)) = &mut slot.part {
                *done = false;
            }
            slot.part_progress = 0;
            slot.budget_left = None;
        }
        self.state = RunState::Stopped;
        self.journal_event(JournalEvent::RunStopped);
        Ok(())
    }

    /// Rewind to the start of the dataset: all parts go back to record 0,
    /// merged results reset. Staging halts the engines and moves them to
    /// the new epoch; updates published before the re-stage carry the old
    /// epoch and are dropped.
    pub fn rewind(&mut self) -> Result<(), CoreError> {
        self.check_open()?;
        self.restage();
        self.journal_event(JournalEvent::Rewound);
        Ok(())
    }

    fn absorb(&mut self, ev: EngineEvent) {
        match ev {
            EngineEvent::Ready { .. } => {}
            EngineEvent::CodeLoaded { .. } => {}
            EngineEvent::CodeError {
                engine,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                self.failures.push(FailureRecord {
                    engine,
                    part: None,
                    epoch,
                    message: format!("code error: {message}"),
                    at: SystemTime::now(),
                });
            }
            EngineEvent::Update { part, update } => {
                if update.epoch != self.epoch {
                    // In flight when the run was reset; the part ids have
                    // been reused by the new epoch, so merging this would
                    // silently re-pollute the fresh results.
                    return;
                }
                if self.queue.is_complete(part) {
                    // Another engine already completed this part — this is
                    // the loser of a speculative race; first completion
                    // wins and the late update is dropped.
                    return;
                }
                let mut completion: Option<CompletionOutcome> = None;
                if let Some(slot) = self.engines.get_mut(update.engine) {
                    let mut newly_done = false;
                    if let Some((pid, done)) = &mut slot.part {
                        if *pid == part {
                            newly_done = update.done && !*done;
                            *done = update.done;
                        }
                    }
                    // Progress delta against the last cumulative stamp
                    // feeds the throughput ledger and the run-N budget.
                    let delta = update.processed.saturating_sub(slot.part_progress);
                    slot.part_progress = update.processed;
                    if delta > 0 {
                        self.ledger
                            .on_progress(update.engine, delta, Instant::now());
                    }
                    if let Some(b) = &mut slot.budget_left {
                        *b = b.saturating_sub(delta as usize);
                    }
                    // Count a part into the engine's completed tally only
                    // on the not-done -> done transition, so a re-published
                    // done update cannot inflate registry progress.
                    if newly_done {
                        slot.completed_records += update.total;
                        completion = Some(self.queue.complete(part, update.engine));
                    }
                    let total = if update.done {
                        slot.completed_records
                    } else {
                        slot.completed_records + update.processed
                    };
                    self.registry.update_worker(
                        self.id,
                        update.engine,
                        if update.done {
                            WorkerState::Idle
                        } else {
                            WorkerState::Busy
                        },
                        Some(total),
                    );
                }
                let newly_completed = completion.is_some();
                if let Some(outcome) = completion {
                    if outcome.winner_was_speculative {
                        self.stats.speculations_won += 1;
                    }
                    // Losing runners stop crunching a part that is already
                    // complete; their registry progress drops back to the
                    // parts they actually completed so the part's records
                    // are counted exactly once, under the winner.
                    for loser in outcome.losers {
                        if let Some(slot) = self.engines.get_mut(loser) {
                            if slot.part.map(|(p, _)| p) == Some(part) {
                                slot.part = None;
                                slot.part_progress = 0;
                                slot.handle.send(EngineCommand::Stop);
                                self.registry.update_worker(
                                    self.id,
                                    loser,
                                    WorkerState::Idle,
                                    Some(slot.completed_records),
                                );
                            }
                        }
                    }
                }
                let engine = update.engine;
                // Journal the publish exactly as the result plane sees it
                // (the completion record follows its done checkpoint, so a
                // replayed completion is always backed by durable results).
                if self.journal.is_some() {
                    self.journal_event(JournalEvent::ResultUpdate {
                        part,
                        update: update.clone(),
                    });
                    if newly_completed {
                        self.journal_event(JournalEvent::PartCompleted {
                            part,
                            epoch: self.epoch,
                        });
                    }
                }
                if self.aida.publish(part, update) == PublishOutcome::NeedsResync {
                    // The delta stream for this part desynced (seq gap,
                    // reassignment, invalidation). Ask the engine for a
                    // full-tree checkpoint; until it lands the manager
                    // keeps serving the last consistent accumulator.
                    if let Some(slot) = self.engines.get(engine) {
                        if slot.alive {
                            slot.handle.send(EngineCommand::Checkpoint);
                        }
                    }
                }
            }
            EngineEvent::Failed {
                engine,
                part,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                // Spend the retry budget before declaring the engine dead:
                // the part is re-queued either way (dispatch_pending will
                // hand it back to this engine, or to a survivor).
                let retry = self
                    .engines
                    .get(engine)
                    .map(|s| s.alive && s.retries_used < self.config.max_part_retries)
                    .unwrap_or(false);
                self.failures.push(FailureRecord {
                    engine,
                    part,
                    epoch,
                    message,
                    at: SystemTime::now(),
                });
                if let Some(slot) = self.engines.get_mut(engine) {
                    slot.part = None;
                    slot.part_progress = 0;
                    if retry {
                        slot.retries_used += 1;
                    } else {
                        slot.alive = false;
                    }
                }
                self.registry.update_worker(
                    self.id,
                    engine,
                    if retry {
                        WorkerState::Idle
                    } else {
                        WorkerState::Failed
                    },
                    None,
                );
                if let Some(p) = part {
                    // With a speculative duplicate still running the part,
                    // neither invalidation nor re-queueing is needed — the
                    // survivor will complete it.
                    let others_running = self.queue.release(p, engine);
                    if !others_running && !self.queue.is_complete(p) {
                        self.aida.invalidate(p);
                        self.queue.requeue(p);
                        self.journal_event(JournalEvent::PartInvalidated { part: p });
                    }
                }
            }
            EngineEvent::Log {
                engine,
                epoch,
                message,
            } => {
                if epoch != self.epoch {
                    return;
                }
                self.logs.push((engine, message));
            }
        }
    }

    /// Hand queued parts to living engines whose current part is done (or
    /// who have none), then — under `WorkStealing` with a dry queue —
    /// consider speculative re-execution of a straggler's part.
    fn dispatch_pending(&mut self) {
        let epoch = self.epoch;
        for (idx, slot) in self.engines.iter_mut().enumerate() {
            if self.queue.pending_len() == 0 {
                break;
            }
            if !slot.alive {
                continue;
            }
            let idle = match slot.part {
                None => true,
                Some((_, done)) => done,
            };
            // An exhausted run-N budget parks the engine until the next
            // run()/run_events() refills it.
            if !idle || slot.budget_left == Some(0) {
                continue;
            }
            let Some(part) = self.queue.pop(idx) else {
                break;
            };
            slot.handle.send(EngineCommand::AssignPart {
                part,
                records: self.parts[part as usize].clone(),
                columns: self.part_columns[part as usize].clone(),
                epoch,
            });
            slot.part = Some((part, false));
            slot.part_progress = 0;
            if self.state == RunState::Running {
                match slot.budget_left {
                    Some(b) => slot.handle.send(EngineCommand::RunN(b)),
                    None => slot.handle.send(EngineCommand::Run),
                };
            }
            if self.config.scheduler.is_pull() {
                self.stats.parts_stolen += 1;
            }
        }
        if self.config.scheduler == SchedulerPolicy::WorkStealing
            && self.state == RunState::Running
            && self.queue.pending_len() == 0
        {
            self.speculate_straggler();
        }
    }

    /// Speculative straggler re-execution: when the queue is dry but some
    /// engine lags the median throughput by more than `straggler_factor`,
    /// re-issue its current part to an idle engine. At most one duplicate
    /// per part; first completion wins (see [`PartQueue`]).
    fn speculate_straggler(&mut self) {
        let Some(median) = self.ledger.median_rate() else {
            return;
        };
        let factor = self.config.straggler_factor.max(1.0);
        let mut straggler: Option<(EngineId, PartId, f64)> = None;
        for (idx, slot) in self.engines.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            let Some((pid, false)) = slot.part else {
                continue;
            };
            let rate = self.ledger.rate(idx);
            if rate > 0.0
                && rate * factor < median
                && straggler.is_none_or(|(_, _, slowest)| rate < slowest)
            {
                straggler = Some((idx, pid, rate));
            }
        }
        let Some((victim, part, _)) = straggler else {
            return;
        };
        let helper = self.engines.iter().enumerate().find_map(|(i, s)| {
            if i == victim || !s.alive || s.budget_left == Some(0) {
                return None;
            }
            match s.part {
                None | Some((_, true)) => Some(i),
                Some((_, false)) => None,
            }
        });
        let Some(helper) = helper else {
            return;
        };
        if !self.queue.speculate(part, helper) {
            return;
        }
        let epoch = self.epoch;
        let slot = &mut self.engines[helper];
        slot.handle.send(EngineCommand::AssignPart {
            part,
            records: self.parts[part as usize].clone(),
            columns: self.part_columns[part as usize].clone(),
            epoch,
        });
        slot.part = Some((part, false));
        slot.part_progress = 0;
        match slot.budget_left {
            Some(b) => slot.handle.send(EngineCommand::RunN(b)),
            None => slot.handle.send(EngineCommand::Run),
        };
        self.stats.parts_speculated += 1;
    }

    /// Scheduler counters plus a fresh per-engine throughput snapshot.
    fn sched_snapshot(&self) -> SchedStats {
        SchedStats {
            engine_rate: self.ledger.rates(),
            ..self.stats.clone()
        }
    }

    /// Current scheduler statistics (also embedded in every
    /// [`SessionStatus`] from [`Session::poll`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched_snapshot()
    }

    /// Current staging-plane statistics (also embedded in every
    /// [`SessionStatus`] from [`Session::poll`]): split-cache hits,
    /// parts/bytes/chunks moved, retries, and the last stage's phase
    /// timings.
    pub fn staging_stats(&self) -> StagingStats {
        self.plane.stats()
    }

    /// Arm a transfer fault plan on the staging plane (tests / chaos
    /// drills): the next [`Session::select_dataset`] sees its part
    /// transfers fail per the plan, retried within
    /// [`crate::IpaConfig::stage_retries`] and surfacing a structured
    /// [`CoreError::StagingFailure`] beyond it.
    pub fn inject_stage_faults(&mut self, plan: StageFaultPlan) {
        self.plane.inject_faults(plan);
    }

    /// Fair-share preemption point: when the pool has asked this session
    /// to give engines back, return idle leases (no part assigned, or the
    /// assigned part is complete) here, at the poll boundary. A part in
    /// flight is never interrupted — its lease goes back at the next part
    /// boundary — and the session always keeps at least one engine, so a
    /// preempted tenant is slowed, never starved.
    fn honor_revocations(&mut self) {
        let Some(pool) = &self.pool else { return };
        let mut wanted = pool.revocations_requested(self.id);
        if wanted == 0 {
            return;
        }
        let mut alive = self.engines_alive();
        let mut released = false;
        for (idx, slot) in self.engines.iter_mut().enumerate() {
            if wanted == 0 || alive <= 1 {
                break;
            }
            if !slot.alive {
                continue;
            }
            let at_boundary = match slot.part {
                None => true,
                Some((_, done)) => done,
            };
            if !at_boundary {
                continue;
            }
            // Shutdown on a leased handle returns the lease to the pool
            // (the engine thread survives, parked for the next tenant).
            slot.handle.shutdown();
            slot.alive = false;
            slot.part = None;
            slot.part_progress = 0;
            self.registry
                .update_worker(self.id, idx, WorkerState::Shutdown, None);
            self.released_engines += 1;
            alive -= 1;
            wanted -= 1;
            released = true;
        }
        if released {
            let engines = self.engines.len() - self.released_engines;
            self.journal_event(JournalEvent::LeaseChanged { engines });
        }
    }

    /// Drain engine events, run failure recovery and work dispatch, and
    /// return a status snapshot. This is the client's polling entry point.
    pub fn poll(&mut self) -> Result<SessionStatus, CoreError> {
        self.check_open()?;
        loop {
            match self.events.try_recv() {
                Ok(ev) => self.absorb(ev),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        self.honor_revocations();
        self.dispatch_pending();

        let parts_total = self.parts.len();
        let parts_done = self.aida.parts_done();
        if parts_total > 0 && parts_done == parts_total && self.state == RunState::Running {
            self.state = RunState::Finished;
        }
        if self.state == RunState::Running && self.engines_alive() == 0 {
            return Err(CoreError::AllEnginesFailed);
        }

        Ok(SessionStatus {
            state: self.state,
            records_processed: self.aida.records_processed(),
            records_total: self.parts.iter().map(|p| p.len() as u64).sum(),
            parts_done,
            parts_total,
            engines_alive: self.engines_alive(),
            epoch: self.epoch,
            sched: self.sched_snapshot(),
            results: self.aida.stats(),
            staging: self.plane.stats(),
            new_logs: std::mem::take(&mut self.logs),
        })
    }

    /// Merged results as of the last poll, served from the manager's
    /// cached snapshot: a poll with no new updates since the last one
    /// performs zero merges and returns the same [`Arc`].
    pub fn results(&mut self) -> Result<Arc<Tree>, CoreError> {
        let before = self.aida.result_version();
        let snap = self.aida.snapshot()?;
        let after = self.aida.result_version();
        if after != before {
            // Mark each actual re-materialization so the recovered
            // `result_version` (and every client's cached copy keyed on
            // it) stays valid across a crash.
            self.journal_event(JournalEvent::ResultVersion { version: after });
        }
        Ok(snap)
    }

    /// Version of the cached merged snapshot; bumps only when the visible
    /// merged results actually change. Clients compare it against a cached
    /// copy to skip re-fetching (and re-rendering) unchanged results.
    pub fn result_version(&self) -> u64 {
        self.aida.result_version()
    }

    /// Result-plane counters (also embedded in every [`SessionStatus`]).
    pub fn result_stats(&self) -> ResultPlaneStats {
        self.aida.stats()
    }

    /// Merged results recomputed flat from scratch, ignoring the snapshot
    /// cache — the reference the cached plane is validated against.
    pub fn results_flat(&mut self) -> Result<Tree, CoreError> {
        self.aida.merged()
    }

    /// Merged results through the two-level merger (paper §2.5 extension),
    /// recomputed from scratch (the cached [`Session::results`] path uses
    /// the same scheme incrementally).
    pub fn results_hierarchical(&mut self, fan_in: usize) -> Result<Tree, CoreError> {
        self.aida.merged_hierarchical(fan_in)
    }

    /// Poll until the run finishes (or fails). If the deadline passes
    /// first, returns [`CoreError::Timeout`] carrying the last status
    /// snapshot — a timeout is never mistakable for success.
    pub fn wait_finished(&mut self, timeout: Duration) -> Result<SessionStatus, CoreError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.poll()?;
            if status.state == RunState::Finished {
                return Ok(status);
            }
            if Instant::now() > deadline {
                return Err(CoreError::Timeout(Some(status)));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Estimate what staging + analyzing the *currently selected* dataset
    /// would cost on a 2006-calibre grid site: bridges the live framework
    /// to the `ipa-simgrid` cost model using the session's real dataset
    /// size and engine count.
    pub fn staging_report(
        &self,
        cal: &ipa_simgrid::PaperCalibration,
    ) -> Result<ipa_simgrid::StageBreakdown, CoreError> {
        let ds = self.dataset.as_ref().ok_or(CoreError::NoDataset)?;
        Ok(ipa_simgrid::simulate_session(
            ds.size_mb(),
            self.engines_alive().max(1),
            cal,
        ))
    }

    /// Failure injection (tests / chaos drills): make engine `engine` die
    /// after processing `after_records` more records. The session will
    /// detect the failure at poll time and re-queue the engine's part.
    pub fn inject_failure(&mut self, engine: EngineId, after_records: u64) {
        if let Some(slot) = self.engines.get(engine) {
            slot.handle.send(EngineCommand::FailAfter(after_records));
        }
    }

    /// Straggler injection (tests / benches): throttle engine `engine` to
    /// `factor ×` its natural per-batch compute time (≤ 1.0 restores full
    /// speed). The scheduler observes the slowdown through the throughput
    /// ledger exactly as it would a genuinely slow node.
    pub fn inject_speed_factor(&mut self, engine: EngineId, factor: f64) {
        if let Some(slot) = self.engines.get(engine) {
            slot.handle.send(EngineCommand::Throttle(factor));
        }
    }

    /// End the session: engines shut down and join (paper §2.3: engines
    /// "should be started for each session and be shutdown at the end of a
    /// session").
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        for slot in &mut self.engines {
            slot.handle.shutdown();
            slot.alive = false;
        }
        self.registry.close_session(self.id);
        self.closed = true;
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

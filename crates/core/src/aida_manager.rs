//! The AIDA manager service: continuous merging of partial results.
//!
//! "As soon as the analysis begins, the intermediate results from each
//! individual analysis engines are collected and merged at the Manager node
//! by a special manager service called the AIDA manager service." (§3.7)
//!
//! Partial results are keyed by *dataset part*, not by engine: each update
//! carries the cumulative tree for one part, so re-publishing is idempotent,
//! merge order is irrelevant, and a part re-run on a different engine after
//! a failure simply replaces the dead engine's partial — no double
//! counting.
//!
//! §2.5 warns the merger becomes a bottleneck with many users and calls for
//! "a sub-level of components that performs the merging"; the
//! [`AidaManager::merged_hierarchical`] path implements that two-level
//! scheme (ablated in the benches).

use std::collections::BTreeMap;

use ipa_aida::{Mergeable, Tree};

use crate::engine::PartId;
use crate::error::CoreError;

/// One published update for a part.
#[derive(Debug, Clone)]
pub struct PartUpdate {
    /// Which engine produced it (diagnostics only).
    pub engine: usize,
    /// Run epoch the update was produced under; the manager drops updates
    /// stamped with a superseded epoch.
    pub epoch: u64,
    /// Records of the part processed so far.
    pub processed: u64,
    /// Records in the part.
    pub total: u64,
    /// Cumulative result tree for this part.
    pub tree: Tree,
    /// True when the part has been fully processed.
    pub done: bool,
}

/// The merge service.
#[derive(Debug, Default)]
pub struct AidaManager {
    latest: BTreeMap<PartId, PartUpdate>,
    merges_performed: u64,
    epoch: u64,
}

impl AidaManager {
    /// New empty manager.
    pub fn new() -> Self {
        AidaManager::default()
    }

    /// Current run epoch; updates from any other epoch are dropped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new run epoch: everything merged so far is forgotten, and
    /// updates stamped with an older (or newer) epoch are rejected by
    /// [`AidaManager::publish`]. This is the control-plane reset the
    /// session issues on `select_dataset`/`load_code`/`rewind` — in-flight
    /// updates queued before the reset carry the old epoch and can no
    /// longer re-pollute the merged results.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.latest.clear();
    }

    /// Record the latest update for a part (replaces any previous one).
    /// Returns false — and merges nothing — when the update carries a
    /// stale epoch.
    pub fn publish(&mut self, part: PartId, update: PartUpdate) -> bool {
        if update.epoch != self.epoch {
            return false;
        }
        self.latest.insert(part, update);
        true
    }

    /// Drop a part's contribution (failure recovery re-runs it elsewhere).
    pub fn invalidate(&mut self, part: PartId) {
        self.latest.remove(&part);
    }

    /// Forget everything without changing the epoch.
    pub fn clear(&mut self) {
        self.latest.clear();
    }

    /// Total records processed across parts.
    pub fn records_processed(&self) -> u64 {
        self.latest.values().map(|u| u.processed).sum()
    }

    /// Parts currently contributing.
    pub fn parts(&self) -> usize {
        self.latest.len()
    }

    /// Parts flagged done.
    pub fn parts_done(&self) -> usize {
        self.latest.values().filter(|u| u.done).count()
    }

    /// Number of tree merges performed so far (ablation metric).
    pub fn merges_performed(&self) -> u64 {
        self.merges_performed
    }

    /// Merge all current partials into one tree (flat, single level).
    pub fn merged(&mut self) -> Result<Tree, CoreError> {
        let mut out = Tree::new();
        for u in self.latest.values() {
            out.merge(&u.tree)
                .map_err(|e| CoreError::Merge(e.to_string()))?;
            self.merges_performed += 1;
        }
        Ok(out)
    }

    /// Two-level merge: parts are grouped into `fan_in`-sized buckets,
    /// each bucket merged by a "sub-merger", then the bucket results are
    /// combined. Produces a tree identical to [`AidaManager::merged`]
    /// (verified by tests); in a distributed deployment each bucket would
    /// run on its own node, relieving the top-level manager.
    pub fn merged_hierarchical(&mut self, fan_in: usize) -> Result<Tree, CoreError> {
        let fan_in = fan_in.max(1);
        let parts: Vec<&PartUpdate> = self.latest.values().collect();
        let mut bucket_results = Vec::new();
        for chunk in parts.chunks(fan_in) {
            let mut sub = Tree::new();
            for u in chunk {
                sub.merge(&u.tree)
                    .map_err(|e| CoreError::Merge(e.to_string()))?;
                self.merges_performed += 1;
            }
            bucket_results.push(sub);
        }
        let mut out = Tree::new();
        for b in &bucket_results {
            out.merge(b).map_err(|e| CoreError::Merge(e.to_string()))?;
            self.merges_performed += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_aida::Histogram1D;

    fn update(engine: usize, fills: &[f64], done: bool) -> PartUpdate {
        let mut h = Histogram1D::new("m", 10, 0.0, 10.0);
        for &x in fills {
            h.fill1(x);
        }
        let mut tree = Tree::new();
        tree.put("/m", h).unwrap();
        PartUpdate {
            engine,
            epoch: 0,
            processed: fills.len() as u64,
            total: fills.len() as u64,
            tree,
            done,
        }
    }

    #[test]
    fn merged_combines_parts() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0, 2.0], true));
        m.publish(1, update(1, &[3.0], false));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 3);
        assert_eq!(m.records_processed(), 3);
        assert_eq!(m.parts(), 2);
        assert_eq!(m.parts_done(), 1);
    }

    #[test]
    fn republish_replaces_not_accumulates() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], false));
        m.publish(0, update(0, &[1.0, 2.0, 3.0], true));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 3); // not 4
    }

    #[test]
    fn failure_reassignment_does_not_double_count() {
        let mut m = AidaManager::new();
        // Engine 0 died halfway through part 7.
        m.publish(7, update(0, &[1.0, 2.0], false));
        m.invalidate(7);
        // Engine 1 re-ran the whole part.
        m.publish(7, update(1, &[1.0, 2.0, 3.0, 4.0], true));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 4);
    }

    #[test]
    fn hierarchical_equals_flat() {
        let mut m = AidaManager::new();
        for p in 0..10u64 {
            let fills: Vec<f64> = (0..=p).map(|i| (i % 10) as f64).collect();
            m.publish(p, update(p as usize, &fills, true));
        }
        let flat = m.merged().unwrap();
        for fan_in in [1, 2, 3, 4, 16] {
            let hier = m.merged_hierarchical(fan_in).unwrap();
            assert_eq!(flat, hier, "fan_in={fan_in}");
        }
    }

    #[test]
    fn stale_epoch_update_is_dropped() {
        let mut m = AidaManager::new();
        assert!(m.publish(0, update(0, &[1.0, 2.0], false)));
        m.begin_epoch(1);
        // A pre-reset update still queued in the channel: same part id,
        // old epoch — must be rejected, leaving the new run empty.
        let stale = update(0, &[1.0, 2.0, 3.0], true);
        assert_eq!(stale.epoch, 0);
        assert!(!m.publish(0, stale));
        assert_eq!(m.parts(), 0);
        assert_eq!(m.records_processed(), 0);
        assert!(m.merged().unwrap().is_empty());
        // A current-epoch update goes through.
        let mut fresh = update(1, &[4.0], true);
        fresh.epoch = 1;
        assert!(m.publish(0, fresh));
        assert_eq!(m.records_processed(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], true));
        m.clear();
        assert_eq!(m.parts(), 0);
        assert!(m.merged().unwrap().is_empty());
    }

    #[test]
    fn merge_conflict_surfaces_as_core_error() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], true));
        // A tree with the same path but different binning.
        let mut h = Histogram1D::new("m", 99, 0.0, 1.0);
        h.fill1(0.5);
        let mut tree = Tree::new();
        tree.put("/m", h).unwrap();
        m.publish(
            1,
            PartUpdate {
                engine: 1,
                epoch: 0,
                processed: 1,
                total: 1,
                tree,
                done: true,
            },
        );
        assert!(matches!(m.merged(), Err(CoreError::Merge(_))));
    }
}

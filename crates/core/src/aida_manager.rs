//! The AIDA manager service: continuous merging of partial results.
//!
//! "As soon as the analysis begins, the intermediate results from each
//! individual analysis engines are collected and merged at the Manager node
//! by a special manager service called the AIDA manager service." (§3.7)
//!
//! Partial results are keyed by *dataset part*, not by engine: the manager
//! keeps one persistent accumulator tree per part, so re-publishing is
//! idempotent, merge order is irrelevant, and a part re-run on a different
//! engine after a failure simply replaces the dead engine's partial — no
//! double counting.
//!
//! The result plane is incremental end to end. Engines publish a
//! [`PartPayload::Checkpoint`] (full cumulative tree) the first time they
//! touch a part and every `checkpoint_every` publishes thereafter; between
//! checkpoints they ship [`PartPayload::Delta`]s — just what changed since
//! the previous publish. The manager applies deltas in place, tracks which
//! parts are dirty, and serves polls from a cached snapshot behind an
//! `Arc<Tree>` stamped with a monotonically increasing `result_version`:
//! a poll with no new data performs **zero** merges. Any delta that cannot
//! be applied safely (sequence gap, engine change, invalidated part) is
//! rejected with [`PublishOutcome::NeedsResync`] and the part degrades to
//! waiting for the next checkpoint — stale results, never corrupt ones.
//!
//! §2.5 warns the merger becomes a bottleneck with many users and calls for
//! "a sub-level of components that performs the merging"; the snapshot path
//! implements that two-level scheme with cached per-bucket sub-merges: a
//! dirty poll re-merges only the dirty parts' buckets (in parallel across a
//! small thread pool), then combines the bucket trees. The stateless
//! [`AidaManager::merged`] / [`AidaManager::merged_hierarchical`] paths are
//! kept as the reference implementation (ablated in the benches).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use ipa_aida::{Mergeable, Tree, TreeDelta};

use crate::engine::PartId;
use crate::error::CoreError;

/// The result payload of one publish: a full snapshot or an increment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PartPayload {
    /// Full cumulative tree for the part. Always accepted; replaces the
    /// part's accumulator and resynchronizes the delta stream.
    Checkpoint(Tree),
    /// Changes since the same engine's previous publish for this part.
    /// Applied in place only when it continues the accumulator's sequence.
    Delta(TreeDelta),
}

/// One published update for a part.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartUpdate {
    /// Which engine produced it.
    pub engine: usize,
    /// Run epoch the update was produced under; the manager drops updates
    /// stamped with a superseded epoch.
    pub epoch: u64,
    /// Per-(engine, part-assignment) publish sequence number. Deltas apply
    /// only when they continue the accumulator's sequence without a gap.
    pub seq: u64,
    /// Records of the part processed so far.
    pub processed: u64,
    /// Records in the part.
    pub total: u64,
    /// The result payload (checkpoint or delta).
    pub payload: PartPayload,
    /// True when the part has been fully processed. Done publishes are
    /// always checkpoints (engine-side invariant), so final results never
    /// depend on a fragile delta chain.
    pub done: bool,
}

impl PartUpdate {
    /// The full tree carried by a checkpoint payload (`None` for deltas).
    pub fn checkpoint_tree(&self) -> Option<&Tree> {
        match &self.payload {
            PartPayload::Checkpoint(t) => Some(t),
            PartPayload::Delta(_) => None,
        }
    }
}

/// What [`AidaManager::publish`] did with an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The update was absorbed into the part's accumulator.
    Applied,
    /// The update carried a superseded epoch and was dropped.
    StaleEpoch,
    /// A delta could not be applied safely (no accumulator for the part,
    /// sequence gap, or different engine). The part's previous state — if
    /// any — stays visible; the publisher must send a checkpoint to resync.
    NeedsResync,
}

impl PublishOutcome {
    /// True when the update was absorbed.
    pub fn applied(&self) -> bool {
        matches!(self, PublishOutcome::Applied)
    }
}

/// Observability counters for the incremental result plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultPlaneStats {
    /// Monotonic version of the cached merged snapshot; bumps only when
    /// the visible merged tree actually changes.
    pub result_version: u64,
    /// Parts with unmerged changes at the time of the query.
    pub dirty_parts: u64,
    /// Polls served from the cached snapshot with zero merge work.
    pub merge_cache_hits: u64,
    /// Tree merge operations performed since the session started.
    pub merges_performed: u64,
    /// Incremental deltas applied in place.
    pub deltas_applied: u64,
    /// Full-tree checkpoints received.
    pub checkpoints_received: u64,
    /// Deltas rejected because the part needed a checkpoint resync.
    pub resyncs_requested: u64,
}

/// Per-part accumulator: the cumulative tree plus the bookkeeping needed
/// to decide whether the next delta continues its stream.
///
/// Serializable so the session journal's compaction snapshots can carry
/// the full result plane (see [`AidaExport`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PartSlot {
    engine: usize,
    seq: u64,
    processed: u64,
    total: u64,
    done: bool,
    tree: Tree,
}

/// Complete serializable state of an [`AidaManager`], as carried by the
/// journal's compaction snapshots ([`crate::journal::SessionSnapshot`]).
/// The sub-merger bucket caches are *not* exported — they are a pure
/// function of `parts` and are rebuilt on import.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AidaExport {
    /// Per-part accumulators with their delta-stream bookkeeping.
    parts: BTreeMap<PartId, PartSlot>,
    /// Run epoch the accumulators belong to.
    epoch: u64,
    /// Parts changed since the snapshot tree was last rebuilt.
    dirty: Vec<PartId>,
    /// The cached merged tree clients were being served.
    snapshot: Tree,
    /// Its monotonic version stamp.
    result_version: u64,
}

/// The merge service.
#[derive(Debug)]
pub struct AidaManager {
    parts: BTreeMap<PartId, PartSlot>,
    epoch: u64,
    /// Sub-merger bucket size: parts `[k·fan_in, (k+1)·fan_in)` share
    /// bucket `k`.
    fan_in: usize,
    /// Max worker threads rebuilding dirty buckets in parallel.
    parallelism: usize,
    /// Cached per-bucket merged trees (the §2.5 sub-merger level).
    buckets: BTreeMap<u64, Tree>,
    /// Parts whose accumulator changed since the last snapshot rebuild.
    dirty: BTreeSet<PartId>,
    /// Cached top-level merged tree, shared with pollers.
    snapshot: Arc<Tree>,
    result_version: u64,
    merges_performed: u64,
    merge_cache_hits: u64,
    deltas_applied: u64,
    checkpoints_received: u64,
    resyncs_requested: u64,
}

/// Default sub-merger bucket size.
pub const DEFAULT_MERGE_FAN_IN: usize = 8;
/// Default bucket-rebuild thread count.
pub const DEFAULT_MERGE_PARALLELISM: usize = 4;

impl Default for AidaManager {
    fn default() -> Self {
        AidaManager::with_merge_config(DEFAULT_MERGE_FAN_IN, DEFAULT_MERGE_PARALLELISM)
    }
}

fn rebuild_bucket(
    parts: &BTreeMap<PartId, PartSlot>,
    bucket: u64,
    fan_in: u64,
) -> Result<(Tree, u64), CoreError> {
    let mut sub = Tree::new();
    let mut merges = 0u64;
    for slot in parts
        .range(bucket * fan_in..(bucket + 1) * fan_in)
        .map(|(_, s)| s)
    {
        sub.merge(&slot.tree)
            .map_err(|e| CoreError::Merge(e.to_string()))?;
        merges += 1;
    }
    Ok((sub, merges))
}

impl AidaManager {
    /// New empty manager with default sub-merger configuration.
    pub fn new() -> Self {
        AidaManager::default()
    }

    /// New empty manager with an explicit sub-merger bucket size and
    /// bucket-rebuild parallelism (both clamped to at least 1).
    pub fn with_merge_config(fan_in: usize, parallelism: usize) -> Self {
        AidaManager {
            parts: BTreeMap::new(),
            epoch: 0,
            fan_in: fan_in.max(1),
            parallelism: parallelism.max(1),
            buckets: BTreeMap::new(),
            dirty: BTreeSet::new(),
            snapshot: Arc::new(Tree::new()),
            result_version: 0,
            merges_performed: 0,
            merge_cache_hits: 0,
            deltas_applied: 0,
            checkpoints_received: 0,
            resyncs_requested: 0,
        }
    }

    /// Current run epoch; updates from any other epoch are dropped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a new run epoch: everything merged so far is forgotten, and
    /// updates stamped with an older (or newer) epoch are rejected by
    /// [`AidaManager::publish`]. This is the control-plane reset the
    /// session issues on `select_dataset`/`load_code`/`rewind` — in-flight
    /// updates queued before the reset carry the old epoch and can no
    /// longer re-pollute the merged results.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.forget_results();
    }

    /// Forget everything without changing the epoch.
    pub fn clear(&mut self) {
        self.forget_results();
    }

    fn forget_results(&mut self) {
        self.parts.clear();
        self.buckets.clear();
        self.dirty.clear();
        if !self.snapshot.is_empty() {
            // The visible merged tree changed (to empty) — new version.
            self.snapshot = Arc::new(Tree::new());
            self.result_version += 1;
        }
    }

    /// Absorb one update into the part's accumulator.
    ///
    /// Checkpoints always apply (they replace the accumulator and restart
    /// its delta sequence); deltas apply only in order, from the same
    /// engine, onto an existing accumulator. Anything else degrades to
    /// [`PublishOutcome::NeedsResync`] — the previous accumulator stays
    /// visible (stale, never corrupt) until a checkpoint arrives.
    pub fn publish(&mut self, part: PartId, update: PartUpdate) -> PublishOutcome {
        if update.epoch != self.epoch {
            return PublishOutcome::StaleEpoch;
        }
        match update.payload {
            PartPayload::Checkpoint(tree) => {
                self.checkpoints_received += 1;
                self.parts.insert(
                    part,
                    PartSlot {
                        engine: update.engine,
                        seq: update.seq,
                        processed: update.processed,
                        total: update.total,
                        done: update.done,
                        tree,
                    },
                );
                self.dirty.insert(part);
                PublishOutcome::Applied
            }
            PartPayload::Delta(ref delta) => {
                let Some(slot) = self.parts.get_mut(&part) else {
                    self.resyncs_requested += 1;
                    return PublishOutcome::NeedsResync;
                };
                if slot.engine != update.engine || update.seq != slot.seq.wrapping_add(1) {
                    self.resyncs_requested += 1;
                    return PublishOutcome::NeedsResync;
                }
                if slot.tree.apply_delta(delta).is_err() {
                    // apply_delta is not atomic: a failure may leave the
                    // accumulator half-updated, so drop it entirely and
                    // wait for the engine's checkpoint.
                    self.parts.remove(&part);
                    self.dirty.insert(part);
                    self.resyncs_requested += 1;
                    return PublishOutcome::NeedsResync;
                }
                slot.seq = update.seq;
                slot.processed = update.processed;
                slot.total = update.total;
                slot.done = update.done;
                self.deltas_applied += 1;
                if !delta.is_empty() {
                    self.dirty.insert(part);
                }
                PublishOutcome::Applied
            }
        }
    }

    /// Drop a part's contribution (failure recovery re-runs it elsewhere).
    pub fn invalidate(&mut self, part: PartId) {
        if self.parts.remove(&part).is_some() {
            self.dirty.insert(part);
        }
    }

    /// Serialize the complete result-plane state (accumulators, dirty set,
    /// cached snapshot, version) for a journal compaction snapshot.
    pub fn export(&self) -> AidaExport {
        AidaExport {
            parts: self.parts.clone(),
            epoch: self.epoch,
            dirty: self.dirty.iter().copied().collect(),
            snapshot: (*self.snapshot).clone(),
            result_version: self.result_version,
        }
    }

    /// Restore state captured by [`AidaManager::export`]. The visible
    /// snapshot, its version, and the dirty set come back exactly as
    /// exported; the sub-merger buckets are rebuilt from the accumulators
    /// (for *every* bucket, not just dirty ones — a later dirty-only
    /// rebuild must find its clean neighbors already cached). Counters
    /// (merges, cache hits, ...) restart from zero: they are observability,
    /// not state.
    pub fn import(&mut self, export: AidaExport) {
        let fan_in = self.fan_in as u64;
        self.parts = export.parts;
        self.epoch = export.epoch;
        self.dirty = export.dirty.into_iter().collect();
        self.snapshot = Arc::new(export.snapshot);
        self.result_version = export.result_version;
        self.buckets.clear();
        let bucket_ids: BTreeSet<u64> = self.parts.keys().map(|p| p / fan_in).collect();
        for b in bucket_ids {
            if let Ok((tree, merges)) = rebuild_bucket(&self.parts, b, fan_in) {
                if merges > 0 {
                    self.buckets.insert(b, tree);
                }
            }
        }
    }

    /// Override the snapshot version (journal replay only: the recovered
    /// plane must present the *journaled* version so clients holding a
    /// cached copy keep polling with a valid `if_newer_than`).
    pub fn force_version(&mut self, version: u64) {
        self.result_version = version;
    }

    /// Parts whose accumulator is flagged done (recovery: these never
    /// re-queue).
    pub fn completed_parts(&self) -> Vec<PartId> {
        self.parts
            .iter()
            .filter(|(_, s)| s.done)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total records processed across parts.
    pub fn records_processed(&self) -> u64 {
        self.parts.values().map(|s| s.processed).sum()
    }

    /// Parts currently contributing.
    pub fn parts(&self) -> usize {
        self.parts.len()
    }

    /// Parts flagged done.
    pub fn parts_done(&self) -> usize {
        self.parts.values().filter(|s| s.done).count()
    }

    /// Number of tree merges performed so far (ablation metric).
    pub fn merges_performed(&self) -> u64 {
        self.merges_performed
    }

    /// Polls served from the cached snapshot with zero merges.
    pub fn merge_cache_hits(&self) -> u64 {
        self.merge_cache_hits
    }

    /// Version of the snapshot [`AidaManager::snapshot`] would return.
    /// Monotonic; bumps only when the merged tree's contents change.
    pub fn result_version(&self) -> u64 {
        self.result_version
    }

    /// Current observability counters.
    pub fn stats(&self) -> ResultPlaneStats {
        ResultPlaneStats {
            result_version: self.result_version,
            dirty_parts: self.dirty.len() as u64,
            merge_cache_hits: self.merge_cache_hits,
            merges_performed: self.merges_performed,
            deltas_applied: self.deltas_applied,
            checkpoints_received: self.checkpoints_received,
            resyncs_requested: self.resyncs_requested,
        }
    }

    /// The merged result, served from cache.
    ///
    /// With no dirty parts this is a pure `Arc` clone — zero merges, zero
    /// allocation. Otherwise only the dirty parts' sub-merger buckets are
    /// rebuilt (in parallel when more than one is dirty), the bucket trees
    /// are combined, and the new snapshot is cached under a bumped
    /// `result_version`.
    pub fn snapshot(&mut self) -> Result<Arc<Tree>, CoreError> {
        if self.dirty.is_empty() {
            self.merge_cache_hits += 1;
            return Ok(Arc::clone(&self.snapshot));
        }
        let fan_in = self.fan_in as u64;
        let dirty_buckets: Vec<u64> = self
            .dirty
            .iter()
            .map(|p| p / fan_in)
            .collect::<BTreeSet<u64>>()
            .into_iter()
            .collect();
        let rebuilt: Vec<(u64, Result<(Tree, u64), CoreError>)> =
            if self.parallelism > 1 && dirty_buckets.len() > 1 {
                let parts = &self.parts;
                let chunk = dirty_buckets.len().div_ceil(self.parallelism);
                std::thread::scope(|s| {
                    let workers: Vec<_> = dirty_buckets
                        .chunks(chunk)
                        .map(|group| {
                            s.spawn(move || {
                                group
                                    .iter()
                                    .map(|&b| (b, rebuild_bucket(parts, b, fan_in)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    workers
                        .into_iter()
                        .flat_map(|w| w.join().expect("sub-merger thread panicked"))
                        .collect()
                })
            } else {
                dirty_buckets
                    .iter()
                    .map(|&b| (b, rebuild_bucket(&self.parts, b, fan_in)))
                    .collect()
            };
        for (bucket, result) in rebuilt {
            let (tree, merges) = result?;
            self.merges_performed += merges;
            if merges == 0 {
                // Every part in the bucket was invalidated.
                self.buckets.remove(&bucket);
            } else {
                self.buckets.insert(bucket, tree);
            }
        }
        let mut out = Tree::new();
        for bucket in self.buckets.values() {
            out.merge(bucket)
                .map_err(|e| CoreError::Merge(e.to_string()))?;
            self.merges_performed += 1;
        }
        self.snapshot = Arc::new(out);
        self.result_version += 1;
        self.dirty.clear();
        Ok(Arc::clone(&self.snapshot))
    }

    /// Merge all current partials into one tree (flat, single level).
    ///
    /// Stateless reference path: ignores the bucket caches and re-merges
    /// everything. The snapshot path is checked against it in tests.
    pub fn merged(&mut self) -> Result<Tree, CoreError> {
        let mut out = Tree::new();
        for s in self.parts.values() {
            out.merge(&s.tree)
                .map_err(|e| CoreError::Merge(e.to_string()))?;
            self.merges_performed += 1;
        }
        Ok(out)
    }

    /// Two-level merge: parts are grouped into `fan_in`-sized buckets,
    /// each bucket merged by a "sub-merger", then the bucket results are
    /// combined. Produces a tree identical to [`AidaManager::merged`]
    /// (verified by tests); in a distributed deployment each bucket would
    /// run on its own node, relieving the top-level manager. Stateless —
    /// the cached equivalent is [`AidaManager::snapshot`].
    pub fn merged_hierarchical(&mut self, fan_in: usize) -> Result<Tree, CoreError> {
        let fan_in = fan_in.max(1);
        let parts: Vec<&PartSlot> = self.parts.values().collect();
        let mut bucket_results = Vec::new();
        for chunk in parts.chunks(fan_in) {
            let mut sub = Tree::new();
            for s in chunk {
                sub.merge(&s.tree)
                    .map_err(|e| CoreError::Merge(e.to_string()))?;
                self.merges_performed += 1;
            }
            bucket_results.push(sub);
        }
        let mut out = Tree::new();
        for b in &bucket_results {
            out.merge(b).map_err(|e| CoreError::Merge(e.to_string()))?;
            self.merges_performed += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_aida::Histogram1D;

    fn fills_tree(fills: &[f64]) -> Tree {
        let mut h = Histogram1D::new("m", 10, 0.0, 10.0);
        for &x in fills {
            h.fill1(x);
        }
        let mut tree = Tree::new();
        tree.put("/m", h).unwrap();
        tree
    }

    fn update(engine: usize, fills: &[f64], done: bool) -> PartUpdate {
        PartUpdate {
            engine,
            epoch: 0,
            seq: 0,
            processed: fills.len() as u64,
            total: fills.len() as u64,
            payload: PartPayload::Checkpoint(fills_tree(fills)),
            done,
        }
    }

    fn delta_update(engine: usize, seq: u64, from: &[f64], to: &[f64]) -> PartUpdate {
        let delta = fills_tree(to).diff_since(&fills_tree(from));
        PartUpdate {
            engine,
            epoch: 0,
            seq,
            processed: to.len() as u64,
            total: to.len() as u64,
            payload: PartPayload::Delta(delta),
            done: false,
        }
    }

    #[test]
    fn merged_combines_parts() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0, 2.0], true));
        m.publish(1, update(1, &[3.0], false));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 3);
        assert_eq!(m.records_processed(), 3);
        assert_eq!(m.parts(), 2);
        assert_eq!(m.parts_done(), 1);
    }

    #[test]
    fn republish_replaces_not_accumulates() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], false));
        m.publish(0, update(0, &[1.0, 2.0, 3.0], true));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 3); // not 4
    }

    #[test]
    fn delta_stream_applies_in_place() {
        let mut m = AidaManager::new();
        assert!(m.publish(0, update(0, &[1.0], false)).applied());
        assert!(m
            .publish(0, delta_update(0, 1, &[1.0], &[1.0, 2.0]))
            .applied());
        assert!(m
            .publish(0, delta_update(0, 2, &[1.0, 2.0], &[1.0, 2.0, 3.0]))
            .applied());
        let t = m.snapshot().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 3);
        assert_eq!(m.records_processed(), 3);
        assert_eq!(m.stats().deltas_applied, 2);
        assert_eq!(m.stats().checkpoints_received, 1);
    }

    #[test]
    fn out_of_order_delta_needs_resync_then_checkpoint_recovers() {
        let mut m = AidaManager::new();
        assert!(m.publish(0, update(0, &[1.0], false)).applied());
        // seq 2 arrives but seq 1 was lost: gap → reject, keep old state.
        assert_eq!(
            m.publish(0, delta_update(0, 2, &[1.0, 2.0], &[1.0, 2.0, 3.0])),
            PublishOutcome::NeedsResync
        );
        assert_eq!(m.snapshot().unwrap().get("/m").unwrap().entries(), 1);
        // The follow-up delta is also rejected (still gapped)...
        assert_eq!(
            m.publish(
                0,
                delta_update(0, 3, &[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0])
            ),
            PublishOutcome::NeedsResync
        );
        assert_eq!(m.stats().resyncs_requested, 2);
        // ...until a checkpoint resynchronizes the stream.
        let mut cp = update(0, &[1.0, 2.0, 3.0, 4.0], false);
        cp.seq = 4;
        assert!(m.publish(0, cp).applied());
        assert!(m
            .publish(
                0,
                delta_update(0, 5, &[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0, 5.0])
            )
            .applied());
        assert_eq!(m.snapshot().unwrap().get("/m").unwrap().entries(), 5);
    }

    #[test]
    fn delta_from_wrong_engine_needs_resync() {
        let mut m = AidaManager::new();
        assert!(m.publish(3, update(0, &[1.0], false)).applied());
        // Speculative re-run on engine 1 publishes a delta mid-stream: it
        // must not be applied onto engine 0's accumulator.
        assert_eq!(
            m.publish(3, delta_update(1, 1, &[1.0], &[1.0, 9.0])),
            PublishOutcome::NeedsResync
        );
        assert_eq!(m.snapshot().unwrap().get("/m").unwrap().entries(), 1);
    }

    #[test]
    fn delta_for_invalidated_part_needs_resync() {
        let mut m = AidaManager::new();
        assert!(m.publish(7, update(0, &[1.0, 2.0], false)).applied());
        m.invalidate(7);
        // The dead engine's queued delta must not resurrect the part.
        assert_eq!(
            m.publish(7, delta_update(0, 1, &[1.0, 2.0], &[1.0, 2.0, 3.0])),
            PublishOutcome::NeedsResync
        );
        assert!(m.snapshot().unwrap().is_empty());
        // The re-run engine's checkpoint brings it back.
        assert!(m
            .publish(7, update(1, &[1.0, 2.0, 3.0, 4.0], true))
            .applied());
        assert_eq!(m.snapshot().unwrap().get("/m").unwrap().entries(), 4);
    }

    #[test]
    fn stale_epoch_delta_and_checkpoint_are_dropped() {
        let mut m = AidaManager::new();
        assert!(m.publish(0, update(0, &[1.0, 2.0], false)).applied());
        m.begin_epoch(1);
        // Pre-reset updates still queued in the channel: old epoch — both
        // payload kinds must be rejected, leaving the new run empty.
        let stale_cp = update(0, &[1.0, 2.0, 3.0], true);
        assert_eq!(m.publish(0, stale_cp), PublishOutcome::StaleEpoch);
        let stale_delta = delta_update(0, 1, &[1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.publish(0, stale_delta), PublishOutcome::StaleEpoch);
        assert_eq!(m.parts(), 0);
        assert_eq!(m.records_processed(), 0);
        assert!(m.merged().unwrap().is_empty());
        assert!(m.snapshot().unwrap().is_empty());
        // A current-epoch update goes through.
        let mut fresh = update(1, &[4.0], true);
        fresh.epoch = 1;
        assert!(m.publish(0, fresh).applied());
        assert_eq!(m.records_processed(), 1);
    }

    #[test]
    fn failure_reassignment_does_not_double_count() {
        let mut m = AidaManager::new();
        // Engine 0 died halfway through part 7.
        m.publish(7, update(0, &[1.0, 2.0], false));
        m.invalidate(7);
        // Engine 1 re-ran the whole part.
        m.publish(7, update(1, &[1.0, 2.0, 3.0, 4.0], true));
        let t = m.merged().unwrap();
        assert_eq!(t.get("/m").unwrap().entries(), 4);
    }

    #[test]
    fn hierarchical_equals_flat() {
        let mut m = AidaManager::new();
        for p in 0..10u64 {
            let fills: Vec<f64> = (0..=p).map(|i| (i % 10) as f64).collect();
            m.publish(p, update(p as usize, &fills, true));
        }
        let flat = m.merged().unwrap();
        for fan_in in [1, 2, 3, 4, 16] {
            let hier = m.merged_hierarchical(fan_in).unwrap();
            assert_eq!(flat, hier, "fan_in={fan_in}");
        }
        // The cached snapshot path agrees too.
        assert_eq!(flat, *m.snapshot().unwrap());
    }

    #[test]
    fn repeated_polls_hit_the_cache_with_zero_merges() {
        let mut m = AidaManager::new();
        for p in 0..6u64 {
            m.publish(p, update(p as usize, &[p as f64], true));
        }
        let first = m.snapshot().unwrap();
        let v = m.result_version();
        let merges = m.merges_performed();
        assert_eq!(m.merge_cache_hits(), 0);
        // No new data: every further poll is an Arc clone of the same tree.
        for _ in 0..5 {
            let again = m.snapshot().unwrap();
            assert!(Arc::ptr_eq(&first, &again));
        }
        assert_eq!(m.merge_cache_hits(), 5);
        assert_eq!(m.merges_performed(), merges);
        assert_eq!(m.result_version(), v);
        // New data dirties exactly one bucket: version bumps, and only that
        // bucket (fan_in parts at most) plus the top level re-merges.
        m.publish(0, update(0, &[0.0, 1.0], true));
        let after = m.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&first, &after));
        assert_eq!(m.result_version(), v + 1);
        assert_eq!(after.get("/m").unwrap().entries(), 7);
    }

    #[test]
    fn dirty_poll_rebuilds_only_dirty_buckets() {
        // fan_in 2 → parts {0,1} bucket 0, {2,3} bucket 1, {4,5} bucket 2.
        let mut m = AidaManager::with_merge_config(2, 1);
        for p in 0..6u64 {
            m.publish(p, update(p as usize, &[p as f64], true));
        }
        m.snapshot().unwrap();
        let merges = m.merges_performed();
        // Touch part 3 only: bucket 1 (2 part merges) + 3 bucket merges.
        m.publish(3, update(3, &[3.0, 3.5], true));
        m.snapshot().unwrap();
        assert_eq!(m.merges_performed() - merges, 2 + 3);
    }

    #[test]
    fn clear_resets() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], true));
        let v = m.result_version();
        m.snapshot().unwrap();
        m.clear();
        assert_eq!(m.parts(), 0);
        assert!(m.merged().unwrap().is_empty());
        assert!(m.snapshot().unwrap().is_empty());
        // The visible tree changed (to empty), so the version moved on.
        assert!(m.result_version() > v);
    }

    #[test]
    fn merge_conflict_surfaces_as_core_error() {
        let mut m = AidaManager::new();
        m.publish(0, update(0, &[1.0], true));
        // A tree with the same path but different binning.
        let mut h = Histogram1D::new("m", 99, 0.0, 1.0);
        h.fill1(0.5);
        let mut tree = Tree::new();
        tree.put("/m", h).unwrap();
        m.publish(
            1,
            PartUpdate {
                engine: 1,
                epoch: 0,
                seq: 0,
                processed: 1,
                total: 1,
                payload: PartPayload::Checkpoint(tree),
                done: true,
            },
        );
        assert!(matches!(m.merged(), Err(CoreError::Merge(_))));
        assert!(matches!(m.snapshot(), Err(CoreError::Merge(_))));
    }
}

//! Shared engine pool: the multi-tenant control plane's engine supply.
//!
//! Before this module, each [`Session`](crate::Session) *owned* its
//! engine threads — created at `create_session`, destroyed at `close`,
//! idle in between, untouchable by anyone else. The paper's manager is
//! meant to serve many concurrent analysts (GRAPPA's portal shape), so
//! here engine ownership moves to a [`ManagerNode`](crate::ManagerNode)-
//! owned [`EnginePool`]: sessions *lease* engines, leases are revocable
//! at part boundaries, and a cross-session fair-share policy
//! ([`crate::sched::fair`]) decides who gives engines back when a new
//! session arrives and the pool is capped.
//!
//! ## Lease lifecycle
//!
//! ```text
//!  spawn ──► parked (events → pool sink)
//!              │ lease(): Rebind{id, session events} ──► leased
//!              │                                            │
//!              ◄── release(): Rebind{slot, sink} ───────────┘
//!  (pool drop: Shutdown + join every thread)
//! ```
//!
//! A lease is an epoch-tagged capability: every grant bumps the slot's
//! `lease_seq`, and a stale [`LeaseReturn`] (double release, late drop)
//! is a no-op. [`EngineCommand::Rebind`] wipes *all* per-session worker
//! state and re-announces `Ready` on the new owner's channel; because an
//! engine processes commands strictly in order, no event from a previous
//! tenant can leak past the rebind — a pooled engine is bit-identical to
//! a freshly spawned one (the single-session chaos proptests run
//! unchanged under `IPA_ENGINE_POOL=on` to pin exactly this).
//!
//! ## Capacity and preemption
//!
//! With `pool_size = 0` (the default) the pool grows on demand and never
//! preempts: a single tenant sees precisely the engines it was granted.
//! With a cap, a lease request that cannot be met from free engines
//! computes fair-share victims, marks their sessions with a *revocation
//! request* (a per-session counter, not per-engine flags — the victim
//! returns whichever engines reach a part boundary first), and waits on
//! a condvar up to `pool_lease_timeout_ms` for returns. Sessions honor
//! revocations in [`Session::poll`](crate::Session::poll) by releasing
//! idle engines, never dropping below one.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use ipa_script::{ScriptBackend, ScriptFusion};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::analyzer::NativeRegistry;
use crate::config::IpaConfig;
use crate::engine::{EngineCommand, EngineEvent, EngineHandle};
use crate::error::CoreError;
use crate::sched::fair::{self, SessionHolding};

/// One engine slot: the owned handle (whose `Drop` joins the thread) plus
/// lease bookkeeping.
struct PooledEngine {
    handle: EngineHandle,
    /// Session currently holding the lease, if any.
    leased_to: Option<u64>,
    /// Bumped on every grant *and* release; a [`LeaseReturn`] carrying a
    /// stale sequence is ignored.
    lease_seq: u64,
}

/// Per-session lease bookkeeping.
struct LeaseInfo {
    vo: String,
    /// Pool slots this session holds.
    slots: HashSet<usize>,
    /// Engines the fair-share scheduler has asked this session to return
    /// at its next part boundaries. A counter, not per-engine flags: the
    /// session returns whichever of its engines go idle first.
    revoke_requested: usize,
}

#[derive(Default)]
struct PoolState {
    engines: Vec<PooledEngine>,
    sessions: HashMap<u64, LeaseInfo>,
}

struct PoolInner {
    /// Maximum engines ever spawned; 0 = grow on demand, never preempt.
    cap: usize,
    lease_timeout: Duration,
    publish_every: usize,
    checkpoint_every: usize,
    backend: ScriptBackend,
    fusion: ScriptFusion,
    registry: NativeRegistry,
    /// VO → fair-share weight, snapshotted from the security domain's
    /// policies at pool construction.
    shares: HashMap<String, f64>,
    state: Mutex<PoolState>,
    /// Signalled on every lease return; `lease` waits here when short.
    returned: Condvar,
    /// Event channel parked engines are rebound to; their (only) event —
    /// the `Ready` after parking — lands here and is discarded.
    sink: Sender<EngineEvent>,
    /// Held so the sink never disconnects.
    _sink_rx: Receiver<EngineEvent>,
    leases_granted: AtomicU64,
    engines_spawned: AtomicU64,
    preemptions_requested: AtomicU64,
    engines_recycled: AtomicU64,
}

/// Snapshot of the pool for dashboards, the gateway's `PoolStats`
/// request, and the shell's `pool` command.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Whether the manager runs a pool at all (`IpaConfig::engine_pool`).
    #[serde(default)]
    pub enabled: bool,
    /// Configured cap (0 = grow on demand).
    pub cap: usize,
    /// Engine threads currently alive in the pool.
    pub engines: usize,
    /// Engines currently leased out.
    pub leased: usize,
    /// Engines parked and immediately grantable.
    pub free: usize,
    /// Sessions currently holding at least one lease.
    pub sessions: usize,
    /// Total leases granted over the pool's lifetime.
    pub leases_granted: u64,
    /// Engine threads ever spawned.
    pub engines_spawned: u64,
    /// Engines the fair-share scheduler asked sessions to return.
    pub preemptions_requested: u64,
    /// Leases returned (voluntarily or under preemption) and recycled.
    pub engines_recycled: u64,
    /// Engines currently leased, by VO (deterministic order).
    pub by_vo: BTreeMap<String, usize>,
}

/// Returning ticket carried by a leased [`EngineHandle`]: gives the
/// engine back to its pool (stale tickets are no-ops, and a ticket
/// outliving its pool does nothing).
pub struct LeaseReturn {
    pool: Weak<PoolInner>,
    slot: usize,
    seq: u64,
}

impl LeaseReturn {
    /// Return the engine: rebind it to the pool sink (wiping all session
    /// state), mark the slot free, and wake any lease waiting for
    /// capacity.
    pub(crate) fn release(self) {
        let Some(inner) = self.pool.upgrade() else {
            return;
        };
        let mut st = inner.state.lock();
        let owner = {
            let Some(e) = st.engines.get_mut(self.slot) else {
                return;
            };
            if e.lease_seq != self.seq || e.leased_to.is_none() {
                return;
            }
            e.lease_seq += 1;
            let _ = e.handle.send(EngineCommand::Rebind {
                id: self.slot,
                events: inner.sink.clone(),
            });
            e.leased_to.take().expect("checked above")
        };
        if let Some(info) = st.sessions.get_mut(&owner) {
            info.slots.remove(&self.slot);
            info.revoke_requested = info.revoke_requested.saturating_sub(1);
            if info.slots.is_empty() {
                st.sessions.remove(&owner);
            }
        }
        inner.engines_recycled.fetch_add(1, Ordering::Relaxed);
        drop(st);
        inner.returned.notify_all();
    }
}

/// Manager-owned shared engine pool. Cheap to clone (an `Arc`); dropping
/// the last clone shuts down and joins every engine thread.
#[derive(Clone)]
pub struct EnginePool {
    inner: Arc<PoolInner>,
}

impl EnginePool {
    /// Build a pool from the manager's config (`pool_size`,
    /// `pool_lease_timeout_ms`, `publish_every`, `checkpoint_every`,
    /// `script_backend`), the site's analyzer registry, and the VO
    /// fair-share weights from the security domain's policies.
    pub fn new(config: &IpaConfig, registry: NativeRegistry, shares: HashMap<String, f64>) -> Self {
        let (sink, sink_rx) = unbounded();
        EnginePool {
            inner: Arc::new(PoolInner {
                cap: config.pool_size,
                lease_timeout: Duration::from_millis(config.pool_lease_timeout_ms.max(1)),
                publish_every: config.publish_every,
                checkpoint_every: config.checkpoint_every,
                backend: config.script_backend,
                fusion: config.script_fusion,
                registry,
                shares,
                state: Mutex::new(PoolState::default()),
                returned: Condvar::new(),
                sink,
                _sink_rx: sink_rx,
                leases_granted: AtomicU64::new(0),
                engines_spawned: AtomicU64::new(0),
                preemptions_requested: AtomicU64::new(0),
                engines_recycled: AtomicU64::new(0),
            }),
        }
    }

    /// Lease up to `count` engines to `session` (VO `vo` for fair-share
    /// and quota accounting). Granted engines are rebound to `events` —
    /// each announces `Ready` there, exactly like a fresh spawn — and the
    /// returned handles carry ids `0..n` in order.
    ///
    /// Free engines are granted immediately; below the cap the pool spawns
    /// more on demand. When capped and short, fair-share victims are asked
    /// to return engines at their next part boundary and the call waits up
    /// to `pool_lease_timeout_ms` for returns, then grants what arrived.
    /// At least one engine is always granted or the call fails with
    /// [`CoreError::PoolExhausted`].
    pub fn lease(
        &self,
        session: u64,
        vo: &str,
        count: usize,
        events: &Sender<EngineEvent>,
    ) -> Result<Vec<EngineHandle>, CoreError> {
        let inner = &self.inner;
        let deadline = Instant::now() + inner.lease_timeout;
        let mut handles: Vec<EngineHandle> = Vec::with_capacity(count);
        let mut st = inner.state.lock();
        st.sessions.entry(session).or_insert_with(|| LeaseInfo {
            vo: vo.to_string(),
            slots: HashSet::new(),
            revoke_requested: 0,
        });
        loop {
            while handles.len() < count {
                let slot = match st.engines.iter().position(|e| e.leased_to.is_none()) {
                    Some(s) => s,
                    None if inner.cap == 0 || st.engines.len() < inner.cap => {
                        let slot = st.engines.len();
                        let handle = EngineHandle::spawn(
                            slot,
                            inner.publish_every,
                            inner.checkpoint_every,
                            inner.registry.clone(),
                            inner.backend,
                            inner.fusion,
                            inner.sink.clone(),
                        );
                        inner.engines_spawned.fetch_add(1, Ordering::Relaxed);
                        st.engines.push(PooledEngine {
                            handle,
                            leased_to: None,
                            lease_seq: 0,
                        });
                        slot
                    }
                    None => break,
                };
                let id = handles.len();
                let e = &mut st.engines[slot];
                e.leased_to = Some(session);
                e.lease_seq += 1;
                let seq = e.lease_seq;
                let commands = e.handle.command_sender();
                let _ = commands.send(EngineCommand::Rebind {
                    id,
                    events: events.clone(),
                });
                st.sessions
                    .get_mut(&session)
                    .expect("inserted above")
                    .slots
                    .insert(slot);
                let ticket = LeaseReturn {
                    pool: Arc::downgrade(inner),
                    slot,
                    seq,
                };
                handles.push(EngineHandle::leased(id, commands, ticket));
                inner.leases_granted.fetch_add(1, Ordering::Relaxed);
            }
            if handles.len() >= count {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.request_revocations(&mut st, session, count - handles.len());
            let _ = inner
                .returned
                .wait_for(&mut st, deadline.saturating_duration_since(now));
        }
        if handles.is_empty() {
            if st
                .sessions
                .get(&session)
                .is_some_and(|i| i.slots.is_empty())
            {
                st.sessions.remove(&session);
            }
            return Err(CoreError::PoolExhausted { requested: count });
        }
        Ok(handles)
    }

    /// Ask fair-share victims to free `need` engines (no-op when enough
    /// revocations are already outstanding). Caller holds the state lock.
    fn request_revocations(&self, st: &mut PoolState, requester: u64, need: usize) {
        let outstanding: usize = st
            .sessions
            .values()
            .map(|i| i.revoke_requested.min(i.slots.len()))
            .sum();
        if outstanding >= need {
            return;
        }
        let capacity = if self.inner.cap > 0 {
            self.inner.cap
        } else {
            st.engines.len()
        };
        // The requester counts in the entitlement math (its arrival is
        // what shrinks everyone's fair share) but is never its own
        // victim.
        let holdings: Vec<SessionHolding> = st
            .sessions
            .iter()
            .map(|(sid, info)| SessionHolding {
                session: *sid,
                vo: info.vo.clone(),
                held: info.slots.len(),
            })
            .collect();
        let victims =
            fair::pick_victims(capacity, &holdings, &self.inner.shares, need - outstanding);
        for (sid, k) in victims {
            if sid == requester {
                continue;
            }
            if let Some(info) = st.sessions.get_mut(&sid) {
                info.revoke_requested = (info.revoke_requested + k).min(info.slots.len());
            }
            self.inner
                .preemptions_requested
                .fetch_add(k as u64, Ordering::Relaxed);
        }
    }

    /// How many engines the fair-share scheduler currently asks `session`
    /// to return. Sessions poll this and release idle engines (keeping at
    /// least one) via [`Session::poll`](crate::Session::poll).
    pub fn revocations_requested(&self, session: u64) -> usize {
        self.inner
            .state
            .lock()
            .sessions
            .get(&session)
            .map(|i| i.revoke_requested)
            .unwrap_or(0)
    }

    /// Engines currently leased to sessions of `vo` (the quota
    /// denominator for [`VoPolicy`](ipa_simgrid::VoPolicy) enforcement).
    pub fn leased_to_vo(&self, vo: &str) -> usize {
        self.inner
            .state
            .lock()
            .sessions
            .values()
            .filter(|i| i.vo == vo)
            .map(|i| i.slots.len())
            .sum()
    }

    /// Snapshot the pool's state and lifetime counters.
    pub fn stats(&self) -> PoolStats {
        let inner = &self.inner;
        let st = inner.state.lock();
        let leased = st.engines.iter().filter(|e| e.leased_to.is_some()).count();
        let mut by_vo = BTreeMap::new();
        for info in st.sessions.values() {
            *by_vo.entry(info.vo.clone()).or_insert(0) += info.slots.len();
        }
        PoolStats {
            enabled: true,
            cap: inner.cap,
            engines: st.engines.len(),
            leased,
            free: st.engines.len() - leased,
            sessions: st.sessions.len(),
            leases_granted: inner.leases_granted.load(Ordering::Relaxed),
            engines_spawned: inner.engines_spawned.load(Ordering::Relaxed),
            preemptions_requested: inner.preemptions_requested.load(Ordering::Relaxed),
            engines_recycled: inner.engines_recycled.load(Ordering::Relaxed),
            by_vo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::builtin_registry;
    use crate::engine::recv_event_timeout;

    fn pool(cap: usize) -> EnginePool {
        let config = IpaConfig {
            pool_size: cap,
            pool_lease_timeout_ms: 200,
            publish_every: 100,
            ..Default::default()
        };
        EnginePool::new(&config, builtin_registry(), HashMap::new())
    }

    fn drain_ready(rx: &Receiver<EngineEvent>, n: usize) {
        for _ in 0..n {
            loop {
                match recv_event_timeout(rx, 0, Duration::from_secs(10)).expect("event") {
                    EngineEvent::Ready { .. } => break,
                    _ => continue,
                }
            }
        }
    }

    #[test]
    fn uncapped_pool_grows_on_demand_and_recycles() {
        let p = pool(0);
        let (tx, rx) = unbounded();
        let mut a = p.lease(1, "ilc", 3, &tx).unwrap();
        assert_eq!(a.len(), 3);
        drain_ready(&rx, 3);
        assert_eq!(p.stats().engines_spawned, 3);
        assert_eq!(p.stats().leased, 3);
        assert_eq!(p.stats().by_vo.get("ilc"), Some(&3));
        for h in &mut a {
            h.shutdown();
        }
        assert_eq!(p.stats().leased, 0);
        assert_eq!(p.stats().free, 3);
        // A second lease reuses the parked engines — no new spawns.
        let (tx2, rx2) = unbounded();
        let b = p.lease(2, "cms", 3, &tx2).unwrap();
        assert_eq!(b.len(), 3);
        drain_ready(&rx2, 3);
        assert_eq!(p.stats().engines_spawned, 3);
        assert_eq!(p.stats().engines_recycled, 3);
    }

    #[test]
    fn capped_pool_grants_partially_then_exhausts() {
        let p = pool(2);
        let (tx, rx) = unbounded();
        let held = p.lease(1, "ilc", 2, &tx).unwrap();
        drain_ready(&rx, 2);
        assert_eq!(held.len(), 2);
        // A second session asks for one: fair share marks session 1 for
        // revocation, but nobody polls to honor it here, so the lease
        // times out empty and reports exhaustion.
        let (tx2, _rx2) = unbounded();
        let err = p.lease(2, "ilc", 1, &tx2).err().expect("lease must fail");
        assert!(matches!(err, CoreError::PoolExhausted { requested: 1 }));
        assert!(p.revocations_requested(1) > 0);
        drop(held);
    }

    #[test]
    fn release_wakes_a_waiting_lease() {
        let p = pool(1);
        let (tx, rx) = unbounded();
        let mut held = p.lease(1, "ilc", 1, &tx).unwrap();
        drain_ready(&rx, 1);
        let p2 = p.clone();
        let waiter = std::thread::spawn(move || {
            let (tx2, rx2) = unbounded();
            let got = p2.lease(2, "ilc", 1, &tx2).unwrap();
            drain_ready(&rx2, 1);
            got.len()
        });
        std::thread::sleep(Duration::from_millis(30));
        held[0].shutdown();
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn stale_double_release_is_a_no_op() {
        let p = pool(0);
        let (tx, rx) = unbounded();
        let mut a = p.lease(1, "ilc", 1, &tx).unwrap();
        drain_ready(&rx, 1);
        a[0].shutdown();
        // shutdown() released the lease; a second shutdown (and Drop
        // after it) must not double-free the slot even though the engine
        // has since been leased to someone else.
        let (tx2, rx2) = unbounded();
        let b = p.lease(2, "cms", 1, &tx2).unwrap();
        drain_ready(&rx2, 1);
        a[0].shutdown();
        drop(a);
        assert_eq!(p.stats().leased, 1, "session 2's lease must survive");
        assert_eq!(p.stats().by_vo.get("cms"), Some(&1));
        drop(b);
    }

    #[test]
    fn revocation_counter_tracks_fair_share() {
        let p = pool(4);
        let (tx, rx) = unbounded();
        let held = p.lease(1, "ilc", 4, &tx).unwrap();
        drain_ready(&rx, 4);
        assert_eq!(held.len(), 4);
        // Session 2 wants 2. With both sessions in one VO the
        // entitlement is 2 each, so session 1 (holding 4) is 2 over —
        // the lease times out (nothing honors revocations here) but
        // leaves the revocation requests behind for session 1.
        let (tx2, _rx2) = unbounded();
        let err = p.lease(2, "ilc", 2, &tx2);
        assert!(err.is_err());
        assert!(
            p.revocations_requested(1) > 0,
            "fair share must ask session 1 to give engines back"
        );
        drop(held);
    }
}

//! The four-step workflow over the real network boundary: client and
//! manager in the same process but talking only through TCP + JSON,
//! exactly like the paper's SOAP split between the JAS client and the
//! manager node.

use std::sync::Arc;
use std::time::Duration;

use ipa_core::{IpaConfig, ManagerNode, RunState, WsClient, WsGateway, WsRequest, WsResponse};
use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{SecurityDomain, VoPolicy};

fn gateway() -> (WsGateway, SecurityDomain) {
    let sec = SecurityDomain::new("ws-site", 21).with_policy(VoPolicy::new("ilc", 8));
    let manager = Arc::new(ManagerNode::new(
        "ws-site",
        sec.clone(),
        IpaConfig {
            publish_every: 200,
            ..Default::default()
        },
    ));
    manager
        .publish_dataset(
            "/lc",
            ipa_dataset::generate_dataset(
                "lc-ws",
                "events over the wire",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 2_000,
                    ..Default::default()
                }),
            ),
            ipa_catalog::Metadata::new(),
        )
        .unwrap();
    let gw = WsGateway::serve(manager, ("127.0.0.1", 0)).unwrap();
    (gw, sec)
}

#[test]
fn full_four_step_flow_over_tcp() {
    let (mut gw, sec) = gateway();
    let mut client = WsClient::connect(gw.addr()).unwrap();

    // Catalog browse + search over the wire.
    let WsResponse::Items(items) = client
        .call_ok(&WsRequest::Browse { folder: "/".into() })
        .unwrap()
    else {
        panic!("browse")
    };
    assert!(!items.is_empty());
    let WsResponse::Entries(hits) = client
        .call_ok(&WsRequest::Search {
            query: "id == \"lc-ws\"".into(),
        })
        .unwrap()
    else {
        panic!("search")
    };
    assert_eq!(hits.len(), 1);

    // Step 1: create a session (proxy travels with the request).
    let proxy = sec.issue_proxy("/CN=remote", "ilc", 0.0, 7200.0);
    let WsResponse::SessionCreated { session, engines } = client
        .call_ok(&WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 3,
        })
        .unwrap()
    else {
        panic!("create")
    };
    assert_eq!(engines, 3);

    // Step 2–3: stage dataset, ship script, run.
    client
        .call_ok(&WsRequest::SelectDataset {
            session,
            id: "lc-ws".into(),
        })
        .unwrap();
    client
        .call_ok(&WsRequest::LoadScript {
            session,
            source: "fn init() { h1(\"/m\", 30, 0.0, 240.0); } fn process(e) { let m = e.bb_mass; if m != null { fill(\"/m\", m); } }".into(),
        })
        .unwrap();
    client.call_ok(&WsRequest::Run { session }).unwrap();

    // Step 4: poll over the wire until finished.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let final_status = loop {
        let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() else {
            panic!("poll")
        };
        if st.state == RunState::Finished {
            break st;
        }
        assert!(std::time::Instant::now() < deadline, "run never finished");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(final_status.records_processed, 2_000);

    // Merged tree crosses the wire intact, stamped with its version.
    let WsResponse::Tree { version, tree } = client
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: None,
        })
        .unwrap()
    else {
        panic!("results")
    };
    assert!(tree.get("/m").unwrap().entries() > 0);

    // Re-polling with the version already held: the run is finished, so
    // nothing changed and the reply is the constant-size "unchanged"
    // message instead of the tree payload.
    let WsResponse::Unchanged { version: v2 } = client
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: Some(version),
        })
        .unwrap()
    else {
        panic!("expected Unchanged for an up-to-date version")
    };
    assert_eq!(v2, version);

    // A version mismatch (stale or garbage) still gets the full tree.
    let WsResponse::Tree {
        version: v3,
        tree: t3,
    } = client
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: Some(version + 1),
        })
        .unwrap()
    else {
        panic!("mismatched version must re-ship the tree")
    };
    assert_eq!(v3, version);
    assert_eq!(t3, tree);

    client
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
    // The session is gone afterwards.
    assert!(client.call_ok(&WsRequest::Poll { session }).is_err());
    gw.shutdown();
}

#[test]
fn bad_proxy_rejected_over_tcp() {
    let (mut gw, _sec) = gateway();
    let mut client = WsClient::connect(gw.addr()).unwrap();
    let foreign = SecurityDomain::new("evil", 1).issue_proxy("/CN=eve", "ilc", 0.0, 7200.0);
    let err = client
        .call_ok(&WsRequest::CreateSession {
            proxy: foreign,
            now: 0.0,
            engines: 1,
        })
        .unwrap_err();
    assert!(err.contains("authentication"), "{err}");
    gw.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_errors_not_disconnects() {
    let (mut gw, _sec) = gateway();
    let mut client = WsClient::connect(gw.addr()).unwrap();

    // Unknown session id.
    let err = client
        .call_ok(&WsRequest::Run { session: 999 })
        .unwrap_err();
    assert!(err.contains("closed"), "{err}");

    // Bad query reaches the client as an error string.
    let err = client
        .call_ok(&WsRequest::Search {
            query: "energy >".into(),
        })
        .unwrap_err();
    assert!(err.contains("syntax"), "{err}");

    // Raw garbage on the wire: the server answers with Error and keeps
    // the connection alive.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(gw.addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    w.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("malformed request"));
    w.write_all(b"\"CatalogTree\"\n").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("Text"));
    // Wire compat: an old client's Results request without the
    // `if_newer_than` field still parses (fails on the session id, not
    // on the request shape).
    w.write_all(b"{\"Results\":{\"session\":999}}\n").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(!line.contains("malformed"), "{line}");
    assert!(line.contains("closed"), "{line}");
    gw.shutdown();
}

#[test]
fn two_clients_share_the_gateway_with_separate_sessions() {
    let (mut gw, sec) = gateway();
    let mut c1 = WsClient::connect(gw.addr()).unwrap();
    let mut c2 = WsClient::connect(gw.addr()).unwrap();

    let mk = |c: &mut WsClient, subject: &str| -> u64 {
        let proxy = sec.issue_proxy(subject, "ilc", 0.0, 7200.0);
        match c
            .call_ok(&WsRequest::CreateSession {
                proxy,
                now: 0.0,
                engines: 2,
            })
            .unwrap()
        {
            WsResponse::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        }
    };
    let s1 = mk(&mut c1, "/CN=one");
    let s2 = mk(&mut c2, "/CN=two");
    assert_ne!(s1, s2);

    // Cross-client access by id works (it's an id-addressed resource, as
    // in WSRF) — but closing one does not affect the other.
    c1.call_ok(&WsRequest::CloseSession { session: s1 })
        .unwrap();
    let WsResponse::Status(st) = c2.call_ok(&WsRequest::Poll { session: s2 }).unwrap() else {
        panic!()
    };
    assert_eq!(st.engines_alive, 2);
    c2.call_ok(&WsRequest::CloseSession { session: s2 })
        .unwrap();
    gw.shutdown();
}

#[test]
fn interactive_controls_over_tcp() {
    let (mut gw, sec) = gateway();
    let mut client = WsClient::connect(gw.addr()).unwrap();
    let proxy = sec.issue_proxy("/CN=ctl", "ilc", 0.0, 7200.0);
    let WsResponse::SessionCreated { session, .. } = client
        .call_ok(&WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 2,
        })
        .unwrap()
    else {
        panic!()
    };
    client
        .call_ok(&WsRequest::SelectDataset {
            session,
            id: "lc-ws".into(),
        })
        .unwrap();
    client
        .call_ok(&WsRequest::LoadNative {
            session,
            name: "higgs-search".into(),
        })
        .unwrap();

    // run_events over the wire: two engines × 300 records. Poll until the
    // budgets are consumed (under the pull policies an engine crosses
    // part boundaries to spend its budget, so this takes a few polls).
    client
        .call_ok(&WsRequest::RunEvents { session, n: 300 })
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() else {
            panic!()
        };
        if st.records_processed == 600 {
            break;
        }
        assert!(
            st.records_processed < 600,
            "run_events overshot its budget: {}",
            st.records_processed
        );
        assert!(
            std::time::Instant::now() < deadline,
            "budget never consumed"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The count must be stable — engines are paused, not merely slow.
    std::thread::sleep(Duration::from_millis(100));
    let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() else {
        panic!()
    };
    assert_eq!(st.records_processed, 600);

    // Scheduler stats cross the wire.
    let WsResponse::Sched(sched) = client.call_ok(&WsRequest::SchedStats { session }).unwrap()
    else {
        panic!("sched stats")
    };
    assert_eq!(sched.parts_queued as usize, st.parts_total);
    assert_eq!(sched.engine_rate.len(), 2);

    // rewind + full run.
    client.call_ok(&WsRequest::Rewind { session }).unwrap();
    client.call_ok(&WsRequest::Run { session }).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() else {
            panic!()
        };
        if st.state == RunState::Finished {
            assert_eq!(st.records_processed, 2_000);
            break;
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Failure records cross the wire (none in this clean run).
    let WsResponse::Failures(failures) = client.call_ok(&WsRequest::Failures { session }).unwrap()
    else {
        panic!("failures")
    };
    assert!(failures.is_empty());

    client
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
    gw.shutdown();
}

#[test]
fn session_directory_and_pool_stats_cross_the_wire() {
    let (mut gw, sec) = gateway();
    let mut client = WsClient::connect(gw.addr()).unwrap();
    let proxy = sec.issue_proxy("/CN=dir", "ilc", 0.0, 7200.0);
    let WsResponse::SessionCreated { session, .. } = client
        .call_ok(&WsRequest::CreateSession {
            proxy,
            now: 0.0,
            engines: 2,
        })
        .unwrap()
    else {
        panic!()
    };

    let WsResponse::SessionTable(table) = client.call_ok(&WsRequest::Sessions).unwrap() else {
        panic!("sessions")
    };
    let me = table.iter().find(|s| s.id == session).unwrap();
    assert_eq!(me.vo, "ilc");
    assert_eq!(me.engines, 2);
    assert!(me.active);

    // Pool stats answer whether or not a pool is running (this gateway's
    // manager follows the IPA_ENGINE_POOL default).
    let WsResponse::Pool(pool) = client.call_ok(&WsRequest::PoolStats).unwrap() else {
        panic!("pool stats")
    };
    if pool.enabled {
        assert_eq!(pool.leased, 2);
    } else {
        assert_eq!(pool.engines, 0);
    }

    client
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
    gw.shutdown();
}

/// Threads this process is running (Linux): the `Threads:` line of
/// `/proc/self/status`.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap()
}

/// Regression for the handler-thread leak: the old gateway spawned (and
/// kept a handle to) one thread per accepted connection, so connect/
/// disconnect churn grew the thread count without bound until shutdown.
/// The reactor serves every connection on a fixed worker pool, so churn
/// must leave the process thread count flat.
#[test]
#[cfg(target_os = "linux")]
fn connection_churn_keeps_thread_count_bounded() {
    let (mut gw, _sec) = gateway();

    // Warm up: the first connection exercises any lazily started plumbing.
    {
        let mut c = WsClient::connect(gw.addr()).unwrap();
        let _ = c.call_ok(&WsRequest::CatalogTree).unwrap();
    }
    let baseline = thread_count();

    for _ in 0..50 {
        let mut c = WsClient::connect(gw.addr()).unwrap();
        let WsResponse::Text(tree) = c.call_ok(&WsRequest::CatalogTree).unwrap() else {
            panic!("catalog tree during churn")
        };
        assert!(tree.contains("lc-ws"));
        // Dropping the client closes the socket; the reactor reaps the
        // connection on its next pass without any thread ever exiting or
        // spawning.
    }
    std::thread::sleep(Duration::from_millis(100));
    let after = thread_count();
    assert!(
        after <= baseline,
        "gateway grew threads under connection churn: {baseline} -> {after}"
    );
    gw.shutdown();
}

//! Crash/recovery tests for the session journal: chaos kill-and-restart
//! (the manager "crashes" at a random point mid-run, restarts from the
//! write-ahead log, and the final merged tree must be bin-for-bin
//! identical to an uninterrupted run), replay idempotence, corrupt-tail
//! tolerance, resume-by-id over the TCP gateway, and the journal-off
//! identity (no files, no behavior change).
//!
//! The whole file honors the `IPA_JOURNAL` CI matrix: `off` runs the
//! journal-disabled identity branch of the chaos test, `buffered` and
//! `fsync` pick the corresponding durability mode for every file-backed
//! journal created here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ipa_aida::Tree;
use ipa_core::{
    decode_events, replay, session_journal_path, AnalysisCode, CoreError, IpaConfig,
    JournalBackend, ManagerNode, RunState, SessionJournal, WsClient, WsGateway, WsRequest,
    WsResponse,
};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{GridProxy, SecurityDomain, VoPolicy};
use proptest::prelude::*;

const DATASET_EVENTS: u64 = 2_000;
const ENGINES: usize = 2;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call — no `tempfile` dependency, so the
/// name carries the pid plus a process-wide counter and the test removes
/// it on the way out (best-effort; a panicking test leaves it for triage).
fn temp_journal_dir(tag: &str) -> String {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("ipa-journal-test-{}-{tag}-{n}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn cleanup(dir: &str) {
    let _ = std::fs::remove_dir_all(dir);
}

/// The CI matrix knob: `off` | `buffered` | `fsync` (anything else means
/// the default, which this file treats as `buffered` for its own
/// file-backed journals so the suite always exercises recovery).
fn journal_mode() -> String {
    std::env::var("IPA_JOURNAL")
        .unwrap_or_default()
        .trim()
        .to_ascii_lowercase()
}

fn config(journal_dir: &str, journal: bool) -> IpaConfig {
    IpaConfig {
        engines_per_session: ENGINES,
        publish_every: 100,
        journal,
        journal_dir: journal_dir.to_string(),
        journal_fsync: journal_mode() == "fsync",
        // Small threshold so the chaos runs cross the compaction boundary
        // several times per run.
        compact_every: 16,
        ..Default::default()
    }
}

fn crash_dataset() -> ipa_dataset::Dataset {
    // Seeded generator: every manager instance publishes the byte-for-byte
    // same dataset, so a restarted manager's re-publish is the idempotent
    // `DatasetStore::put` case and recovered results stay comparable.
    ipa_dataset::generate_dataset(
        "lc-crash",
        "crash-recovery sample",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: DATASET_EVENTS,
            ..Default::default()
        }),
    )
}

fn manager_with(journal_dir: &str, journal: bool) -> (ManagerNode, GridProxy) {
    let sec = SecurityDomain::new("crash-site", 9).with_policy(VoPolicy::new("ilc", 8));
    let manager = ManagerNode::new("crash.site.org", sec.clone(), config(journal_dir, journal));
    manager
        .publish_dataset("/lc/crash", crash_dataset(), ipa_catalog::Metadata::new())
        .unwrap();
    let proxy = sec.issue_proxy("/CN=crash", "ilc", 0.0, 7200.0);
    (manager, proxy)
}

/// The uninterrupted reference: same dataset, same engine count, same
/// analyzer, no crash. Computed once per process — every chaos case
/// compares its post-recovery final tree against this.
fn reference_tree() -> &'static Tree {
    static REF: OnceLock<Tree> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = temp_journal_dir("reference");
        let (manager, proxy) = manager_with(&dir, false);
        let mut s = manager.create_session(&proxy, 0.0, ENGINES).unwrap();
        s.select_dataset(&DatasetId::new("lc-crash")).unwrap();
        s.load_code(AnalysisCode::Native("higgs-search".into()))
            .unwrap();
        s.run().unwrap();
        s.wait_finished(Duration::from_secs(60)).unwrap();
        let tree = (*s.results().unwrap()).clone();
        s.close();
        cleanup(&dir);
        tree
    })
}

/// One chaos case: run, kill the manager after `kill_polls` polls,
/// restart from the journal, and check (a) the recovered session is the
/// exact pre-crash snapshot — same epoch, same `result_version`, same
/// merged tree — and (b) finishing the run yields results bin-for-bin
/// identical to the uninterrupted reference.
fn chaos_case(kill_polls: usize) {
    let dir = temp_journal_dir("chaos");
    let (manager_a, proxy) = manager_with(&dir, true);
    let mut s = manager_a.create_session(&proxy, 0.0, ENGINES).unwrap();
    let id = s.id();
    s.select_dataset(&DatasetId::new("lc-crash")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    for _ in 0..kill_polls {
        s.poll().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    // The last thing the journal sees: the merged snapshot the client was
    // holding when the lights went out.
    let pre_tree = s.results().unwrap();
    let pre_epoch = s.epoch();
    let pre_version = s.result_version();
    assert_eq!(s.journal_append_errors(), 0);
    drop(s); // crash: no graceful state handoff, only the journal survives
    drop(manager_a);

    // Restart: a fresh manager over the same journal directory.
    let (manager_b, _proxy) = manager_with(&dir, true);
    let mut r = manager_b.recover_session(id).unwrap();
    assert_eq!(r.id(), id);
    assert_eq!(r.subject(), "/CN=crash");
    assert_eq!(r.engines(), ENGINES);
    assert_eq!(r.epoch(), pre_epoch, "recovered epoch must match");
    assert_eq!(
        r.result_version(),
        pre_version,
        "recovered result_version must match before any new merge"
    );
    let recovered_tree = r.results().unwrap();
    assert_eq!(
        recovered_tree, pre_tree,
        "recovered merged tree must equal the pre-crash snapshot"
    );
    assert_eq!(
        r.result_version(),
        pre_version,
        "serving the recovered snapshot must not re-materialize it"
    );

    // Finish the run (recovery parks a mid-run session in Paused; when
    // every part had already completed it comes back Finished).
    let st = r.poll().unwrap();
    assert!(
        matches!(st.state, RunState::Paused | RunState::Finished),
        "recovered state {:?}",
        st.state
    );
    if st.state != RunState::Finished {
        r.run().unwrap();
        r.wait_finished(Duration::from_secs(60)).unwrap();
    }
    let final_status = r.poll().unwrap();
    assert_eq!(final_status.records_processed, DATASET_EVENTS);
    assert_eq!(final_status.parts_done, final_status.parts_total);
    let final_tree = r.results().unwrap();
    assert_eq!(
        &*final_tree,
        reference_tree(),
        "post-recovery results must be bin-for-bin identical to an uninterrupted run"
    );
    r.close();
    cleanup(&dir);
}

/// The `journal = off` identity branch: behavior matches the pre-journal
/// build — no files appear, the run is unaffected, and recovery has
/// nothing to work from.
fn journal_off_case() {
    let dir = temp_journal_dir("chaos-off");
    let (manager, proxy) = manager_with(&dir, false);
    let mut s = manager.create_session(&proxy, 0.0, ENGINES).unwrap();
    let id = s.id();
    s.select_dataset(&DatasetId::new("lc-crash")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(s.journal_append_errors(), 0);
    let tree = s.results().unwrap();
    assert_eq!(&*tree, reference_tree());
    s.close();
    assert!(
        !std::path::Path::new(&dir).exists(),
        "journal off must never touch the filesystem"
    );
    match manager.recover_session(id) {
        Err(CoreError::Journal(_)) => {}
        other => panic!("recovery without a journal must fail, got {other:?}"),
    }
    cleanup(&dir);
}

proptest! {
    // Each case is a full run + crash + recovery + re-run; a handful of
    // random kill points per invocation keeps the suite honest without
    // dominating wall-clock. CI sweeps IPA_JOURNAL across the matrix.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn crash_at_random_point_recovers_exactly(kill_polls in 0usize..30) {
        if journal_mode() == "off" {
            journal_off_case();
        } else {
            chaos_case(kill_polls);
        }
    }
}

#[test]
fn replaying_a_journal_twice_equals_replaying_it_once() {
    let dir = temp_journal_dir("idem");
    let (manager, proxy) = manager_with(&dir, false);
    let mut s = manager.create_session(&proxy, 0.0, ENGINES).unwrap();
    // Memory backend, compaction disabled: the full event history stays in
    // the shared buffer for inspection.
    let backend = JournalBackend::memory();
    let handle = backend.handle().unwrap();
    s.attach_journal(SessionJournal::new(backend, 0));
    s.select_dataset(&DatasetId::new("lc-crash")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    s.results().unwrap();
    s.pause().unwrap();
    s.close();

    let bytes = handle.lock().clone();
    let events = decode_events(&bytes);
    assert!(!events.is_empty());
    let once = replay(&events, 8, 1);
    let mut doubled = events.clone();
    doubled.extend(events.iter().cloned());
    let twice = replay(&doubled, 8, 1);

    assert_eq!(once.session, twice.session);
    assert_eq!(once.subject, twice.subject);
    assert_eq!(once.engines, twice.engines);
    assert_eq!(once.dataset, twice.dataset);
    assert_eq!(once.epoch, twice.epoch);
    assert_eq!(once.state, twice.state);
    assert_eq!(once.completed, twice.completed);
    assert_eq!(
        serde_json::to_string(&once.code).unwrap(),
        serde_json::to_string(&twice.code).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&once.aida.export()).unwrap(),
        serde_json::to_string(&twice.aida.export()).unwrap(),
        "the reconstructed result plane must be identical"
    );
    cleanup(&dir);
}

#[test]
fn recovery_survives_a_torn_and_garbage_tail() {
    let dir = temp_journal_dir("tail");
    let (manager_a, proxy) = manager_with(&dir, true);
    let mut s = manager_a.create_session(&proxy, 0.0, ENGINES).unwrap();
    let id = s.id();
    s.select_dataset(&DatasetId::new("lc-crash")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let pre_tree = s.results().unwrap();
    let pre_version = s.result_version();
    drop(s);
    drop(manager_a);

    // Simulate a crash mid-append: a half-written record followed by raw
    // garbage. Everything before the tear must still replay.
    let path = session_journal_path(&dir, id);
    let mut bytes = std::fs::read(&path).unwrap();
    let mut torn = ipa_core::journal::wal::encode_record(br#""RunStarted""#);
    torn.truncate(torn.len() - 3);
    bytes.extend_from_slice(&torn);
    bytes.extend_from_slice(b"\xde\xad\xbe\xef not a journal record");
    std::fs::write(&path, &bytes).unwrap();

    let (manager_b, _proxy) = manager_with(&dir, true);
    let mut r = manager_b.recover_session(id).unwrap();
    assert_eq!(r.poll().unwrap().state, RunState::Finished);
    assert_eq!(r.result_version(), pre_version);
    assert_eq!(r.results().unwrap(), pre_tree);
    r.close();
    cleanup(&dir);
}

#[test]
fn gateway_resume_by_id_across_manager_restart() {
    let dir = temp_journal_dir("gw");
    let sec = SecurityDomain::new("crash-site", 9).with_policy(VoPolicy::new("ilc", 8));
    let proxy = sec.issue_proxy("/CN=remote", "ilc", 0.0, 7200.0);

    let manager_a = Arc::new(ManagerNode::new(
        "crash.site.org",
        sec.clone(),
        config(&dir, true),
    ));
    manager_a
        .publish_dataset("/lc/crash", crash_dataset(), ipa_catalog::Metadata::new())
        .unwrap();
    let mut gw = WsGateway::serve(manager_a.clone(), ("127.0.0.1", 0)).unwrap();
    let mut client = WsClient::connect(gw.addr()).unwrap();

    let WsResponse::SessionCreated { session, engines } = client
        .call_ok(&WsRequest::CreateSession {
            proxy: proxy.clone(),
            now: 0.0,
            engines: ENGINES,
        })
        .unwrap()
    else {
        panic!("create")
    };
    assert_eq!(engines, ENGINES);
    client
        .call_ok(&WsRequest::SelectDataset {
            session,
            id: "lc-crash".into(),
        })
        .unwrap();
    client
        .call_ok(&WsRequest::LoadNative {
            session,
            name: "higgs-search".into(),
        })
        .unwrap();
    client.call_ok(&WsRequest::Run { session }).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let WsResponse::Status(st) = client.call_ok(&WsRequest::Poll { session }).unwrap() else {
            panic!("poll")
        };
        if st.state == RunState::Finished {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "run never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    let WsResponse::Tree { version, tree } = client
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: None,
        })
        .unwrap()
    else {
        panic!("results")
    };

    // Resuming a session that is still live is idempotent — same grant.
    let WsResponse::SessionCreated {
        session: same,
        engines: still,
    } = client.call_ok(&WsRequest::Resume { session }).unwrap()
    else {
        panic!("live resume")
    };
    assert_eq!(same, session);
    assert_eq!(still, ENGINES);

    // Manager "crash": gateway down, manager dropped, only the WAL stays.
    gw.shutdown();
    drop(client);
    drop(gw);
    drop(manager_a);

    let manager_b = Arc::new(ManagerNode::new(
        "crash.site.org",
        sec.clone(),
        config(&dir, true),
    ));
    manager_b
        .publish_dataset("/lc/crash", crash_dataset(), ipa_catalog::Metadata::new())
        .unwrap();
    let mut gw2 = WsGateway::serve(manager_b, ("127.0.0.1", 0)).unwrap();
    let mut client2 = WsClient::connect(gw2.addr()).unwrap();

    // The session id is the capability (WSRF-EPR): resume needs nothing
    // else, and the recovered session picks up where the old one stopped.
    let WsResponse::SessionCreated {
        session: resumed,
        engines: granted,
    } = client2.call_ok(&WsRequest::Resume { session }).unwrap()
    else {
        panic!("resume")
    };
    assert_eq!(resumed, session);
    assert_eq!(granted, ENGINES);

    let WsResponse::Status(st) = client2.call_ok(&WsRequest::Poll { session }).unwrap() else {
        panic!("poll after resume")
    };
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.records_processed, DATASET_EVENTS);

    // The client's cached version from before the crash is still valid…
    let WsResponse::Unchanged { version: v2 } = client2
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: Some(version),
        })
        .unwrap()
    else {
        panic!("cached version must survive the restart")
    };
    assert_eq!(v2, version);
    // …and the full tree crosses the restart intact.
    let WsResponse::Tree {
        version: v3,
        tree: t3,
    } = client2
        .call_ok(&WsRequest::Results {
            session,
            if_newer_than: None,
        })
        .unwrap()
    else {
        panic!("results after resume")
    };
    assert_eq!(v3, version);
    assert_eq!(t3, tree);

    // Resuming an id nobody ever created is an error, not a blank session.
    assert!(client2
        .call_ok(&WsRequest::Resume { session: 4242 })
        .is_err());

    client2
        .call_ok(&WsRequest::CloseSession { session })
        .unwrap();
    gw2.shutdown();
    cleanup(&dir);
}

#[test]
fn republishing_a_conflicting_descriptor_is_refused() {
    let dir = temp_journal_dir("conflict");
    let (manager, _proxy) = manager_with(&dir, false);
    // Same id, different content: silent replacement would invalidate
    // every recovered session staged against the original bytes.
    let other = ipa_dataset::generate_dataset(
        "lc-crash",
        "a different sample under the same id",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: 100,
            seed: 7,
            ..Default::default()
        }),
    );
    match manager.publish_dataset("/lc/crash", other, ipa_catalog::Metadata::new()) {
        Err(CoreError::DatasetConflict { id }) => assert_eq!(id, "lc-crash"),
        other => panic!("expected DatasetConflict, got {other:?}"),
    }
    cleanup(&dir);
}

//! Scheduling-plane tests: micro-partitioned work queues, work stealing,
//! speculative straggler re-execution, and the exactly-once guarantee
//! that must survive all of them.

use std::time::{Duration, Instant};

use ipa_aida::Tree;
use ipa_core::{AnalysisCode, IpaConfig, ManagerNode, SchedulerPolicy, SessionStatus};
use ipa_dataset::{DataLayout, DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{GridProxy, SecurityDomain, VoPolicy};
use proptest::prelude::*;

fn manager_with(events: u64, config: IpaConfig) -> (ManagerNode, GridProxy) {
    let sec = SecurityDomain::new("sched-site", 99).with_policy(VoPolicy::new("ilc", 16));
    let manager = ManagerNode::new("sched.example.org", sec.clone(), config);
    let ds = ipa_dataset::generate_dataset(
        "lc-sched",
        "scheduler-plane events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/lc", ds, ipa_catalog::Metadata::new())
        .unwrap();
    let proxy = sec.issue_proxy("/CN=sched", "ilc", 0.0, 7200.0);
    (manager, proxy)
}

/// Full run of the whole dataset under `config`; returns wall-clock from
/// `run()` to `Finished`, the final status, and the merged tree.
fn timed_run(events: u64, config: IpaConfig) -> (Duration, SessionStatus, Tree) {
    let engines = config.engines_per_session;
    let (manager, proxy) = manager_with(events, config);
    let mut s = manager.create_session(&proxy, 0.0, engines).unwrap();
    s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    let started = Instant::now();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(120)).unwrap();
    let elapsed = started.elapsed();
    let tree = s.results().unwrap().as_ref().clone();
    s.close();
    (elapsed, st, tree)
}

/// The two runs must have merged to the same histograms: identical entry
/// counts per bin, heights equal up to float summation order.
fn assert_same_merge(a: &Tree, b: &Tree, path: &str) {
    let ha = a.get(path).unwrap().as_h1().unwrap();
    let hb = b.get(path).unwrap().as_h1().unwrap();
    assert_eq!(ha.all_entries(), hb.all_entries(), "{path}: total entries");
    for i in 0..ha.axis().bins() {
        assert_eq!(ha.bin_entries(i), hb.bin_entries(i), "{path} bin {i}");
        let d = (ha.bin_height(i) - hb.bin_height(i)).abs();
        assert!(
            d <= 1e-9 * ha.bin_height(i).abs().max(1.0),
            "{path} bin {i} height: {} vs {}",
            ha.bin_height(i),
            hb.bin_height(i)
        );
    }
}

#[test]
fn work_stealing_beats_static_with_slow_engine() {
    // One engine 16× slower. Static is hostage to it; work stealing routes
    // the records around it and speculation rescues its final part. The
    // strict ≤50% acceptance number lives in the criterion bench — here we
    // use a forgiving margin so the test stays robust on loaded CI boxes.
    const EVENTS: u64 = 100_000;
    let config = |scheduler| IpaConfig {
        scheduler,
        engines_per_session: 4,
        oversub: 4,
        publish_every: 500,
        speed_factors: vec![16.0, 1.0, 1.0, 1.0],
        ..Default::default()
    };

    let (static_t, static_st, static_tree) = timed_run(EVENTS, config(SchedulerPolicy::Static));
    let (ws_t, ws_st, ws_tree) = timed_run(EVENTS, config(SchedulerPolicy::WorkStealing));

    // Both runs processed every record exactly once.
    for st in [&static_st, &ws_st] {
        assert_eq!(st.records_processed, EVENTS);
        assert_eq!(st.parts_done, st.parts_total);
    }
    assert_eq!(
        ws_tree.get("/higgs/n_btags").unwrap().entries(),
        EVENTS,
        "every record fills n_btags exactly once"
    );
    assert_same_merge(&static_tree, &ws_tree, "/higgs/n_btags");
    assert_same_merge(&static_tree, &ws_tree, "/higgs/bb_mass");

    // Scheduler stats tell the story of each policy.
    assert_eq!(static_st.sched.policy, SchedulerPolicy::Static);
    assert_eq!(static_st.sched.parts_stolen, 0);
    assert_eq!(static_st.sched.parts_speculated, 0);
    assert_eq!(ws_st.sched.policy, SchedulerPolicy::WorkStealing);
    assert_eq!(ws_st.sched.parts_queued, 16);
    assert!(
        ws_st.sched.parts_stolen > 0,
        "micro-parts must be pulled beyond the first wave"
    );

    assert!(
        ws_t.as_secs_f64() <= 0.75 * static_t.as_secs_f64(),
        "work stealing ({ws_t:?}) should finish well before static ({static_t:?})"
    );
}

#[test]
fn straggler_part_is_speculatively_rescued() {
    // Two engines, one 20× slower: once the fast engine drains the queue
    // it must duplicate the straggler's part and win the race.
    const EVENTS: u64 = 30_000;
    let (manager, proxy) = manager_with(
        EVENTS,
        IpaConfig {
            scheduler: SchedulerPolicy::WorkStealing,
            engines_per_session: 2,
            oversub: 2,
            publish_every: 250,
            ..Default::default()
        },
    );
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_speed_factor(0, 20.0);
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(120)).unwrap();

    assert_eq!(st.records_processed, EVENTS);
    assert_eq!(st.parts_done, st.parts_total);
    assert!(
        st.sched.parts_speculated >= 1,
        "the straggler's part was never speculated: {:?}",
        st.sched
    );
    assert!(
        st.sched.speculations_won >= 1,
        "the fast engine should win the race: {:?}",
        st.sched
    );
    // First-completion-wins kept the merge exactly-once.
    let tree = s.results().unwrap();
    assert_eq!(tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
    s.close();
}

#[test]
fn work_queue_pulls_without_speculating() {
    // WorkQueue = pull-based micro-parts, no speculation ever.
    let (t, st, tree) = timed_run(
        3_000,
        IpaConfig {
            scheduler: SchedulerPolicy::WorkQueue,
            engines_per_session: 3,
            oversub: 3,
            publish_every: 100,
            ..Default::default()
        },
    );
    assert!(t < Duration::from_secs(60));
    assert_eq!(st.records_processed, 3_000);
    assert_eq!(st.sched.policy, SchedulerPolicy::WorkQueue);
    assert_eq!(st.sched.parts_queued, 9);
    assert!(st.sched.parts_stolen > 0);
    assert_eq!(st.sched.parts_speculated, 0);
    assert_eq!(tree.get("/higgs/n_btags").unwrap().entries(), 3_000);
}

#[test]
fn rewind_under_work_stealing_restages_the_whole_queue() {
    // A rewound micro-partitioned run must reprocess all records exactly
    // once even though engines held only a fraction of the parts.
    let (manager, proxy) = manager_with(
        2_000,
        IpaConfig {
            scheduler: SchedulerPolicy::WorkStealing,
            engines_per_session: 2,
            oversub: 4,
            publish_every: 100,
            ..Default::default()
        },
    );
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();

    s.rewind().unwrap();
    let st = s.poll().unwrap();
    assert_eq!(st.records_processed, 0, "rewind clears merged progress");
    assert_eq!(st.sched.parts_stolen, 0, "counters reset with the epoch");

    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.records_processed, 2_000);
    assert_eq!(st.parts_done, 8);
    let tree = s.results().unwrap();
    assert_eq!(tree.get("/higgs/n_btags").unwrap().entries(), 2_000);
    s.close();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: WorkStealing with a random straggler, random
    /// oversubscription, and a random injected kill still processes every
    /// record exactly once and merges to the same histograms as a clean
    /// Static run.
    #[test]
    fn chaotic_work_stealing_matches_clean_static(
        slow_engine in 0usize..3,
        slow_factor in 1.0f64..6.0,
        oversub in 1usize..=16,
        kill_engine in 0usize..3,
        kill_after in 0u64..400,
    ) {
        const EVENTS: u64 = 600;
        let config = |scheduler| IpaConfig {
            scheduler,
            engines_per_session: 3,
            oversub,
            publish_every: 50,
            ..Default::default()
        };

        // Ground truth: a clean static run over the (deterministically
        // generated) dataset.
        let (_, static_st, static_tree) = timed_run(EVENTS, config(SchedulerPolicy::Static));
        prop_assert_eq!(static_st.records_processed, EVENTS);

        // Chaos run: throttled straggler + mid-part engine kill.
        let (manager, proxy) = manager_with(EVENTS, config(SchedulerPolicy::WorkStealing));
        let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
        s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
        s.load_code(AnalysisCode::Native("higgs-search".into())).unwrap();
        s.inject_speed_factor(slow_engine, slow_factor);
        s.inject_failure(kill_engine, kill_after);
        s.run().unwrap();
        let st = s.wait_finished(Duration::from_secs(60)).unwrap();

        prop_assert_eq!(st.records_processed, EVENTS);
        prop_assert_eq!(st.parts_done, st.parts_total);
        let tree = s.results().unwrap();
        prop_assert_eq!(tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
        assert_same_merge(&static_tree, &tree, "/higgs/n_btags");
        assert_same_merge(&static_tree, &tree, "/higgs/bb_mass");
        s.close();
    }

    /// PR 3 satellite: the incremental result plane (delta publishes +
    /// cached two-level snapshot) must merge bin-for-bin like the legacy
    /// full-clone plane (`checkpoint_every = 1`) under chaos — random
    /// publish cadence and checkpoint interval, random oversubscription,
    /// an injected mid-part kill, and a rewind mid-run.
    #[test]
    fn chaotic_delta_plane_matches_full_clone_publishes(
        checkpoint_every in 2usize..=32,
        publish_every in 20usize..=200,
        oversub in 1usize..=16,
        kill_engine in 0usize..3,
        kill_after in 0u64..400,
    ) {
        const EVENTS: u64 = 600;
        let run = |cp: usize| -> Tree {
            let (manager, proxy) = manager_with(EVENTS, IpaConfig {
                scheduler: SchedulerPolicy::WorkStealing,
                engines_per_session: 3,
                oversub,
                publish_every,
                checkpoint_every: cp,
                ..Default::default()
            });
            let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
            s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
            s.load_code(AnalysisCode::Native("higgs-search".into())).unwrap();
            s.inject_failure(kill_engine, kill_after);
            // Start, let deltas flow for a moment, then rewind mid-run:
            // updates staged under the old epoch must not leak into the
            // fresh run's accumulators.
            s.run().unwrap();
            for _ in 0..10 {
                s.poll().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            s.rewind().unwrap();
            s.run().unwrap();
            let st = s.wait_finished(Duration::from_secs(60)).unwrap();
            assert_eq!(st.records_processed, EVENTS);
            assert_eq!(st.parts_done, st.parts_total);

            // The cached snapshot agrees with a from-scratch flat merge of
            // the same accumulators...
            let snap = s.results().unwrap();
            let flat = s.results_flat().unwrap();
            assert_same_merge(&snap, &flat, "/higgs/n_btags");
            assert_same_merge(&snap, &flat, "/higgs/bb_mass");
            // ...and a repeat poll with nothing new is a pure cache hit:
            // zero merges, same Arc, same version.
            let before = s.result_stats();
            let again = s.results().unwrap();
            let after = s.result_stats();
            assert!(
                std::sync::Arc::ptr_eq(&snap, &again),
                "unchanged poll must return the cached snapshot"
            );
            assert_eq!(after.merges_performed, before.merges_performed,
                "unchanged poll must perform zero merges");
            assert_eq!(after.merge_cache_hits, before.merge_cache_hits + 1);
            assert_eq!(after.result_version, before.result_version);

            let out = snap.as_ref().clone();
            s.close();
            out
        };

        // checkpoint_every = 1 is the legacy plane: every publish ships a
        // full-tree clone and no delta is ever applied.
        let clone_tree = run(1);
        let delta_tree = run(checkpoint_every);
        prop_assert_eq!(clone_tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
        prop_assert_eq!(delta_tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
        assert_same_merge(&clone_tree, &delta_tree, "/higgs/n_btags");
        assert_same_merge(&clone_tree, &delta_tree, "/higgs/bb_mass");
    }

    /// PR 8 satellite: the columnar data plane must merge bin-for-bin like
    /// the row plane under chaos — random oversubscription and publish
    /// cadence, an injected mid-part engine kill, and a rewind mid-run.
    /// Per-batch fills are bit-identical by construction; this pins the
    /// whole pipeline (staging transcode, cached-split reuse after the
    /// rewind, engine batch dispatch, merge) to the row oracle.
    #[test]
    fn chaotic_columnar_plane_matches_row_plane(
        publish_every in 20usize..=200,
        oversub in 1usize..=16,
        kill_engine in 0usize..3,
        kill_after in 0u64..400,
    ) {
        const EVENTS: u64 = 600;
        let run = |layout: DataLayout| -> Tree {
            let (manager, proxy) = manager_with(EVENTS, IpaConfig {
                scheduler: SchedulerPolicy::WorkStealing,
                engines_per_session: 3,
                oversub,
                publish_every,
                data_layout: layout,
                ..Default::default()
            });
            let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
            s.select_dataset(&DatasetId::new("lc-sched")).unwrap();
            s.load_code(AnalysisCode::Native("higgs-search".into())).unwrap();
            s.inject_failure(kill_engine, kill_after);
            // Start, let a few publishes land, then rewind: the restaged
            // epoch must reuse the cached split (and its transcodes under
            // the columnar layout) without double-counting anything.
            s.run().unwrap();
            for _ in 0..10 {
                s.poll().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            s.rewind().unwrap();
            s.run().unwrap();
            let st = s.wait_finished(Duration::from_secs(60)).unwrap();
            assert_eq!(st.records_processed, EVENTS);
            assert_eq!(st.parts_done, st.parts_total);
            let out = s.results().unwrap().as_ref().clone();
            s.close();
            out
        };

        let row_tree = run(DataLayout::Row);
        let col_tree = run(DataLayout::Columnar);
        prop_assert_eq!(row_tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
        prop_assert_eq!(col_tree.get("/higgs/n_btags").unwrap().entries(), EVENTS);
        assert_same_merge(&row_tree, &col_tree, "/higgs/n_btags");
        assert_same_merge(&row_tree, &col_tree, "/higgs/bb_mass");
        assert_same_merge(&row_tree, &col_tree, "/higgs/visible_energy");
    }
}

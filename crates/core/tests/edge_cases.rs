//! Edge-case and failure-path integration tests: empty datasets, more
//! engines than records, record-count splits, poison scripts that kill
//! every engine, and zero-event run requests.

use std::time::Duration;

use ipa_core::{AnalysisCode, CoreError, IpaConfig, ManagerNode, RunState};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{SecurityDomain, VoPolicy};

fn manager_with(events: u64, config: IpaConfig) -> (ManagerNode, ipa_simgrid::GridProxy) {
    let sec = SecurityDomain::new("edge", 5).with_policy(VoPolicy::new("vo", 32));
    let m = ManagerNode::new("edge-site", sec.clone(), config);
    let ds = ipa_dataset::generate_dataset(
        "ds",
        "ds",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events,
            ..Default::default()
        }),
    );
    m.publish_dataset("/d", ds, ipa_catalog::Metadata::new())
        .unwrap();
    (m, sec.issue_proxy("/CN=edge", "vo", 0.0, 1e6))
}

#[test]
fn empty_dataset_finishes_immediately() {
    let (m, proxy) = manager_with(0, IpaConfig::default());
    let mut s = m.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(30)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.records_processed, 0);
    assert_eq!(st.parts_done, st.parts_total);
    // init() still ran, so booked plots exist (empty).
    let tree = s.results().unwrap();
    assert!(tree.contains("/higgs/bb_mass"));
    assert_eq!(tree.get("/higgs/bb_mass").unwrap().entries(), 0);
    s.close();
}

#[test]
fn more_engines_than_records() {
    let (m, proxy) = manager_with(3, IpaConfig::default());
    let mut s = m.create_session(&proxy, 0.0, 8).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(30)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.records_processed, 3);
    s.close();
}

#[test]
fn record_count_split_mode_works_end_to_end() {
    let (m, proxy) = manager_with(
        1000,
        IpaConfig {
            byte_balanced_split: false,
            publish_every: 100,
            ..Default::default()
        },
    );
    let mut s = m.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(30)).unwrap();
    assert_eq!(st.records_processed, 1000);
    s.close();
}

#[test]
fn poison_script_kills_all_engines_and_surfaces() {
    // A script that errors on a specific record: the first engine to hit
    // it dies, its part is re-queued, the next engine dies too, until the
    // session reports AllEnginesFailed — not a hang, not double counting.
    let (m, proxy) = manager_with(
        1000,
        IpaConfig {
            publish_every: 50,
            ..Default::default()
        },
    );
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    let poison = r#"
        fn init() { h1("/x", 10, 0.0, 1.0); }
        fn process(e) {
            if e.event_id == 123 { let boom = e.no_such_field; }
        }
    "#;
    s.load_code(AnalysisCode::Script(poison.into())).unwrap();
    s.run().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match s.poll() {
            Err(CoreError::AllEnginesFailed) => break,
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "poison script did not surface as failure"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(other) => panic!("unexpected: {other}"),
        }
    }
    // Both engines died on the same poisoned part.
    assert_eq!(s.failures().len(), 2);
    assert!(s.failures()[0].message.contains("no_such_field"));
    assert_eq!(
        s.failures()[0].part,
        s.failures()[1].part,
        "both deaths must name the same poisoned part"
    );
    s.close();
}

#[test]
fn run_events_zero_is_a_noop_pause() {
    let (m, proxy) = manager_with(500, IpaConfig::default());
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run_events(0).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let st = s.poll().unwrap();
    assert_eq!(st.records_processed, 0);
    // And the session can still run normally afterwards.
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(30)).unwrap();
    assert_eq!(st.records_processed, 500);
    s.close();
}

#[test]
fn stop_freezes_but_keeps_results_visible() {
    let (m, proxy) = manager_with(
        20_000,
        IpaConfig {
            publish_every: 200,
            ..Default::default()
        },
    );
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    // Let some records flow, then stop.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let st = s.poll().unwrap();
        if st.records_processed > 0 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    s.stop().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let st = s.poll().unwrap();
    assert_eq!(st.state, RunState::Stopped);
    // Results remain accessible after stop.
    let tree = s.results().unwrap();
    assert!(tree.contains("/higgs/bb_mass"));
    s.close();
}

#[test]
fn banned_subject_cannot_create_session() {
    let sec = SecurityDomain::new("edge", 5).with_policy(ipa_simgrid::VoPolicy {
        vo: "vo".into(),
        max_nodes: 4,
        banned_subjects: vec!["/CN=mallory".into()],
        share: 1.0,
        max_total_engines: 0,
    });
    let m = ManagerNode::new("edge-site", sec.clone(), IpaConfig::default());
    let bad = sec.issue_proxy("/CN=mallory", "vo", 0.0, 1e6);
    assert!(matches!(
        m.create_session(&bad, 0.0, 2),
        Err(CoreError::Auth(ipa_simgrid::AuthError::SubjectBanned(_)))
    ));
}

#[test]
fn results_before_any_run_are_empty() {
    let (m, proxy) = manager_with(100, IpaConfig::default());
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    assert!(s.results().unwrap().is_empty());
    let st = s.poll().unwrap();
    assert_eq!(st.state, RunState::Idle);
    assert_eq!(st.parts_total, 0);
    s.close();
}

#[test]
fn control_hammering_stays_consistent() {
    // Rapidly alternate run/pause/rewind/run_events while polling — the
    // session must end with exactly-once processing and a merged result
    // identical to a clean run.
    let (m, proxy) = manager_with(
        5_000,
        IpaConfig {
            publish_every: 100,
            ..Default::default()
        },
    );
    let mut s = m.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();

    for round in 0..10 {
        match round % 4 {
            0 => s.run().unwrap(),
            1 => {
                s.pause().unwrap();
                s.poll().unwrap();
            }
            2 => s.run_events(37).unwrap(),
            _ => {
                s.rewind().unwrap();
            }
        }
        std::thread::sleep(Duration::from_millis(7));
        s.poll().unwrap();
    }
    // Finish cleanly from whatever state the hammering left.
    s.rewind().unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.records_processed, 5_000);
    assert_eq!(st.parts_done, st.parts_total);
    let tree = s.results().unwrap();
    assert_eq!(
        tree.get("/higgs/n_btags").unwrap().entries(),
        5_000,
        "every record counted exactly once after the control storm"
    );
    s.close();
}

#[test]
fn serde_status_round_trip() {
    // SessionStatus crosses the gateway; make sure every field survives.
    let (m, proxy) = manager_with(100, IpaConfig::default());
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    let st = s.poll().unwrap();
    let json = serde_json::to_string(&st).unwrap();
    let back: ipa_core::SessionStatus = serde_json::from_str(&json).unwrap();
    assert_eq!(st, back);
    s.close();
}

//! Multi-tenant control-plane tests: the shared engine pool, cross-session
//! fair-share preemption, per-VO quotas, and the bit-identity guarantee —
//! a session leasing from the pool must merge exactly like a session that
//! owns its engines outright.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ipa_aida::Tree;
use ipa_core::{AnalysisCode, IpaConfig, ManagerNode, SchedulerPolicy, SessionStatus};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_simgrid::{GridProxy, SecurityDomain, VoPolicy};
use proptest::prelude::*;

fn manager_with(events: u64, config: IpaConfig) -> (ManagerNode, GridProxy) {
    let sec = SecurityDomain::new("mt-site", 42).with_policy(VoPolicy::new("ilc", 16));
    let manager = ManagerNode::new("mt.example.org", sec.clone(), config);
    let ds = ipa_dataset::generate_dataset(
        "lc-mt",
        "multi-tenant events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/lc", ds, ipa_catalog::Metadata::new())
        .unwrap();
    let proxy = sec.issue_proxy("/CN=tenant", "ilc", 0.0, 7200.0);
    (manager, proxy)
}

/// One full run of the whole dataset in a fresh session on `manager`.
fn run_session(manager: &ManagerNode, proxy: &GridProxy, engines: usize) -> (SessionStatus, Tree) {
    let mut s = manager.create_session(proxy, 0.0, engines).unwrap();
    s.select_dataset(&DatasetId::new("lc-mt")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    let tree = s.results().unwrap().as_ref().clone();
    s.close();
    (st, tree)
}

/// The two runs must have merged to the same histograms: identical entry
/// counts per bin, heights equal up to float summation order.
fn assert_same_merge(a: &Tree, b: &Tree, path: &str) {
    let ha = a.get(path).unwrap().as_h1().unwrap();
    let hb = b.get(path).unwrap().as_h1().unwrap();
    assert_eq!(ha.all_entries(), hb.all_entries(), "{path}: total entries");
    for i in 0..ha.axis().bins() {
        assert_eq!(ha.bin_entries(i), hb.bin_entries(i), "{path} bin {i}");
        let d = (ha.bin_height(i) - hb.bin_height(i)).abs();
        assert!(
            d <= 1e-9 * ha.bin_height(i).abs().max(1.0),
            "{path} bin {i} height: {} vs {}",
            ha.bin_height(i),
            hb.bin_height(i)
        );
    }
}

/// Tentpole acceptance: a pooled session is bit-identical to an owning
/// session — and a *recycled* engine (leased, used, returned, re-leased)
/// is indistinguishable from a freshly spawned one.
#[test]
fn pooled_session_merges_identically_to_owned_session() {
    const EVENTS: u64 = 20_000;
    let config = |pool: bool| IpaConfig {
        engine_pool: pool,
        scheduler: SchedulerPolicy::WorkStealing,
        engines_per_session: 3,
        oversub: 4,
        publish_every: 100,
        ..Default::default()
    };

    let (owned_mgr, owned_proxy) = manager_with(EVENTS, config(false));
    let (owned_st, owned_tree) = run_session(&owned_mgr, &owned_proxy, 3);
    assert_eq!(owned_st.records_processed, EVENTS);
    assert!(!owned_mgr.pool_stats().enabled);

    let (pool_mgr, pool_proxy) = manager_with(EVENTS, config(true));
    let (pool_st, pool_tree) = run_session(&pool_mgr, &pool_proxy, 3);
    assert_eq!(pool_st.records_processed, EVENTS);
    assert_eq!(pool_st.parts_done, owned_st.parts_done);
    assert_same_merge(&owned_tree, &pool_tree, "/higgs/n_btags");
    assert_same_merge(&owned_tree, &pool_tree, "/higgs/bb_mass");
    assert_same_merge(&owned_tree, &pool_tree, "/higgs/visible_energy");

    // Second tenant on the same pool: every engine is a recycled one
    // (Rebind must reset engine state exactly like a fresh spawn).
    let stats = pool_mgr.pool_stats();
    assert_eq!(stats.engines_spawned, 3);
    assert_eq!(stats.free, 3);
    let (again_st, again_tree) = run_session(&pool_mgr, &pool_proxy, 3);
    assert_eq!(again_st.records_processed, EVENTS);
    assert_same_merge(&owned_tree, &again_tree, "/higgs/n_btags");
    assert_same_merge(&owned_tree, &again_tree, "/higgs/bb_mass");
    let stats = pool_mgr.pool_stats();
    assert_eq!(
        stats.engines_spawned, 3,
        "the second session must reuse pooled engines, not spawn more"
    );
    assert_eq!(stats.engines_recycled, 6);
}

/// Fair-share preemption under contention: tenant A holds the whole capped
/// pool; tenant B's admission revokes part of A's lease at part
/// boundaries. Both must finish, B is never starved below one engine, and
/// A's results stay exactly-once despite losing engines mid-run.
#[test]
fn contended_pool_preempts_at_part_boundaries() {
    const EVENTS: u64 = 120_000;
    let config = IpaConfig {
        engine_pool: true,
        pool_size: 4,
        pool_lease_timeout_ms: 30_000,
        scheduler: SchedulerPolicy::WorkStealing,
        engines_per_session: 4,
        oversub: 8,
        publish_every: 200,
        ..Default::default()
    };
    let (manager, proxy) = manager_with(EVENTS, config);
    let manager = Arc::new(manager);

    // Tenant A takes the entire pool and starts a long run (throttled so
    // it is still in flight when B arrives).
    let mut a = manager.create_session(&proxy, 0.0, 4).unwrap();
    a.select_dataset(&DatasetId::new("lc-mt")).unwrap();
    a.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    for e in 0..4 {
        a.inject_speed_factor(e, 6.0);
    }
    a.run().unwrap();

    // Tenant B asks for half the pool from another thread; the lease
    // blocks until A returns engines at part boundaries.
    let b_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let b_mgr = manager.clone();
    let b_proxy = proxy.clone();
    let b_flag = b_done.clone();
    let b_thread = std::thread::spawn(move || {
        let mut b = b_mgr.create_session(&b_proxy, 0.0, 2).unwrap();
        let granted = b.engines();
        b.select_dataset(&DatasetId::new("lc-mt")).unwrap();
        b.load_code(AnalysisCode::Native("higgs-search".into()))
            .unwrap();
        b.run().unwrap();
        let st = b.wait_finished(Duration::from_secs(60)).unwrap();
        let tree = b.results().unwrap().as_ref().clone();
        b.close();
        b_flag.store(true, std::sync::atomic::Ordering::Relaxed);
        (granted, st, tree)
    });

    // A keeps polling until *both* tenants are done — A's poll is the
    // preemption point, so it must stay live while B waits for engines —
    // and must complete every record even while giving engines back.
    let deadline = Instant::now() + Duration::from_secs(90);
    let a_st = loop {
        let st = a.poll().unwrap();
        if st.state == ipa_core::RunState::Finished
            && b_done.load(std::sync::atomic::Ordering::Relaxed)
        {
            break st;
        }
        assert!(
            Instant::now() < deadline,
            "tenants never both finished: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    let a_tree = a.results().unwrap().as_ref().clone();

    let (b_granted, b_st, b_tree) = b_thread.join().unwrap();
    assert!(b_granted >= 1, "tenant B was starved out of the pool");
    assert_eq!(a_st.records_processed, EVENTS);
    assert_eq!(b_st.records_processed, EVENTS);
    assert!(b_st.engines_alive >= 1);
    // A and B computed the same physics despite the lease churn.
    assert_same_merge(&a_tree, &b_tree, "/higgs/n_btags");
    assert_same_merge(&a_tree, &b_tree, "/higgs/bb_mass");

    let stats = manager.pool_stats();
    assert!(
        stats.preemptions_requested >= 1,
        "admission under a full pool must request revocations: {stats:?}"
    );
    assert!(
        a_st.engines_alive < 4,
        "tenant A should have returned engines to the pool: {a_st:?}"
    );
    a.close();
    assert_eq!(manager.pool_stats().leased, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite: N concurrent tenants with random workloads and injected
    /// kills on one capped shared pool must each merge bin-for-bin
    /// identically to an isolated run, and none may starve.
    #[test]
    fn chaotic_shared_pool_matches_isolated_runs(
        oversub in 1usize..=8,
        kill_engine in 0usize..2,
        kill_after in 0u64..300,
        slow_engine in 0usize..2,
        slow_factor in 1.0f64..4.0,
    ) {
        const EVENTS: u64 = 500;
        const TENANTS: usize = 3;
        let config = |pool: bool| IpaConfig {
            engine_pool: pool,
            // 4 < 3 tenants × 2 engines: admission must contend.
            pool_size: if pool { 4 } else { 0 },
            pool_lease_timeout_ms: 30_000,
            scheduler: SchedulerPolicy::WorkStealing,
            engines_per_session: 2,
            oversub,
            publish_every: 50,
            ..Default::default()
        };

        // Oracle: one isolated, owning, chaos-free session.
        let (iso_mgr, iso_proxy) = manager_with(EVENTS, config(false));
        let (iso_st, iso_tree) = run_session(&iso_mgr, &iso_proxy, 2);
        prop_assert_eq!(iso_st.records_processed, EVENTS);

        let (manager, proxy) = manager_with(EVENTS, config(true));
        let manager = Arc::new(manager);
        let mut tenants = Vec::new();
        for i in 0..TENANTS {
            let manager = manager.clone();
            let proxy = proxy.clone();
            tenants.push(std::thread::spawn(move || {
                let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
                s.select_dataset(&DatasetId::new("lc-mt")).unwrap();
                s.load_code(AnalysisCode::Native("higgs-search".into())).unwrap();
                // Per-tenant chaos: one straggles, one loses an engine
                // mid-part (absorbed by the retry budget), one runs clean.
                if i == 0 {
                    s.inject_speed_factor(slow_engine, slow_factor);
                }
                if i == 1 {
                    s.inject_failure(kill_engine, kill_after);
                }
                s.run().unwrap();
                let st = s.wait_finished(Duration::from_secs(60)).unwrap();
                let tree = s.results().unwrap().as_ref().clone();
                s.close();
                (st, tree)
            }));
        }
        for t in tenants {
            let (st, tree) = t.join().unwrap();
            prop_assert_eq!(st.records_processed, EVENTS, "a tenant lost records");
            prop_assert!(st.engines_alive >= 1, "a tenant starved: {:?}", st);
            assert_same_merge(&iso_tree, &tree, "/higgs/n_btags");
            assert_same_merge(&iso_tree, &tree, "/higgs/bb_mass");
        }
        prop_assert_eq!(manager.pool_stats().leased, 0);
    }
}

//! End-to-end framework tests: the paper's four user steps, the
//! interactive controls, dynamic code reload, and failure recovery —
//! run against real engines on real threads.

use std::time::Duration;

use ipa_core::{AnalysisCode, CoreError, HiggsSearchAnalyzer, IpaConfig, ManagerNode, RunState};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_script::AidaHost;
use ipa_simgrid::{SecurityDomain, VoPolicy};

const DATASET_EVENTS: u64 = 4000;

fn setup(engines: usize) -> (ManagerNode, ipa_simgrid::GridProxy) {
    setup_with(IpaConfig {
        engines_per_session: engines,
        publish_every: 200,
        ..Default::default()
    })
}

fn setup_with(config: IpaConfig) -> (ManagerNode, ipa_simgrid::GridProxy) {
    let sec = SecurityDomain::new("slac-osg", 99).with_policy(VoPolicy::new("ilc", 16));
    let manager = ManagerNode::new("slac.stanford.edu", sec.clone(), config);
    let ds = ipa_dataset::generate_dataset(
        "lc-higgs",
        "Simulated LC events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: DATASET_EVENTS,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/lc/simulation", ds, ipa_catalog::Metadata::new())
        .unwrap();
    let proxy = sec.issue_proxy("/CN=alice", "ilc", 0.0, 7200.0);
    (manager, proxy)
}

#[test]
fn four_steps_full_run() {
    let (manager, proxy) = setup(4);
    // Step 1: securely connect, create session.
    let mut s = manager.create_session(&proxy, 0.0, 4).unwrap();
    assert_eq!(s.engines(), 4);
    assert_eq!(s.subject(), "/CN=alice");

    // Step 2: select dataset (via catalog search, like the chooser).
    let hits = manager.search("id ~ \"lc-*\"").unwrap();
    assert_eq!(hits.len(), 1);
    s.select_dataset(&hits[0].descriptor.id).unwrap();
    assert_eq!(s.dataset().unwrap().records, DATASET_EVENTS);

    // Step 3: ship code and run.
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();

    // Step 4: poll for merged results until finished.
    let status = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(status.state, RunState::Finished);
    assert_eq!(status.records_processed, DATASET_EVENTS);
    assert_eq!(status.parts_done, status.parts_total);
    assert!((status.progress() - 1.0).abs() < 1e-12);

    let tree = s.results().unwrap();
    let mass = tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert!(mass.all_entries() > 0);
    s.close();
}

#[test]
fn parallel_result_equals_serial_reference() {
    // The core correctness property: splitting + parallel analysis +
    // merging must equal a single-threaded pass over the whole dataset.
    let (manager, proxy) = setup(8);
    let records = manager
        .locator()
        .fetch(&DatasetId::new("lc-higgs"))
        .unwrap()
        .records
        .clone();
    let mut serial_host = AidaHost::new();
    ipa_core::run_analyzer_serial(
        &mut HiggsSearchAnalyzer::default(),
        &records,
        &mut serial_host,
    )
    .unwrap();

    let mut s = manager.create_session(&proxy, 0.0, 8).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let parallel = s.results().unwrap();

    for path in ["/higgs/bb_mass", "/higgs/n_btags", "/higgs/visible_energy"] {
        let a = serial_host.tree.get(path).unwrap().as_h1().unwrap();
        let b = parallel.get(path).unwrap().as_h1().unwrap();
        assert_eq!(a.all_entries(), b.all_entries(), "{path}");
        for i in 0..a.axis().bins() {
            assert_eq!(a.bin_entries(i), b.bin_entries(i), "{path} bin {i}");
            assert!((a.bin_height(i) - b.bin_height(i)).abs() < 1e-9);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-9, "{path}");
    }
    s.close();
}

#[test]
fn intermediate_results_stream_in_before_completion() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();

    // Interactivity: partial results must become visible while running.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut saw_partial = false;
    loop {
        let st = s.poll().unwrap();
        if st.records_processed > 0 && st.records_processed < DATASET_EVENTS {
            saw_partial = true;
        }
        if st.state == RunState::Finished || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(saw_partial, "no intermediate results observed");
    s.close();
}

#[test]
fn pause_resume_and_run_events() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();

    // Run exactly 300 records per engine, then observe a stable count.
    s.run_events(300).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let st1 = s.poll().unwrap();
    assert_eq!(st1.records_processed, 600);
    std::thread::sleep(Duration::from_millis(100));
    let st2 = s.poll().unwrap();
    assert_eq!(st2.records_processed, 600, "run_events must stop exactly");

    // Pause immediately after resuming: processing halts quickly.
    s.run().unwrap();
    s.pause().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let paused_at = s.poll().unwrap().records_processed;
    std::thread::sleep(Duration::from_millis(100));
    let later = s.poll().unwrap().records_processed;
    assert_eq!(paused_at, later, "records kept flowing after pause");

    // Resume to completion.
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.records_processed, DATASET_EVENTS);
    s.close();
}

#[test]
fn rewind_reprocesses_from_scratch() {
    let (manager, proxy) = setup(3);
    let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let first = s.results().unwrap();

    s.rewind().unwrap();
    let st = s.poll().unwrap();
    assert_eq!(st.records_processed, 0);
    assert_eq!(st.state, RunState::Idle);

    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let second = s.results().unwrap();
    // Re-running identical code over the same dataset gives identical
    // results — no leakage from the first pass.
    assert_eq!(first, second);
    s.close();
}

#[test]
fn dynamic_code_reload_changes_results() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();

    let v1 = r#"
        fn init() { h1("/cut/mass", 24, 0.0, 240.0); }
        fn process(e) {
            let m = e.bb_mass;
            if m != null { fill("/cut/mass", m); }
        }
    "#;
    s.load_code(AnalysisCode::Script(v1.into())).unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(120)).unwrap();
    let loose = s.results().unwrap();
    let loose_entries = loose.get("/cut/mass").unwrap().entries();
    assert!(loose_entries > 0);

    // "After every iteration of the analysis, changes can be made in the
    // analysis code and the new analysis code can be dynamically reloaded
    // and used to reprocess the same dataset." (§3.6)
    let v2 = r#"
        fn init() { h1("/cut/mass", 24, 0.0, 240.0); }
        fn process(e) {
            let m = e.bb_mass;
            if m != null && m > 100 && m < 140 && e.n_btags >= 2 {
                fill("/cut/mass", m);
            }
        }
    "#;
    s.load_code(AnalysisCode::Script(v2.into())).unwrap();
    s.rewind().unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(120)).unwrap();
    let tight = s.results().unwrap();
    let tight_entries = tight.get("/cut/mass").unwrap().entries();
    assert!(
        tight_entries < loose_entries,
        "tighter cuts must select fewer events ({tight_entries} vs {loose_entries})"
    );
    s.close();
}

#[test]
fn engine_failure_recovers_without_double_counting() {
    let (manager, proxy) = setup(4);
    let mut s = manager.create_session(&proxy, 0.0, 4).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    // Kill engine 1 partway into its part.
    s.inject_failure(1, 137);
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(120)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.engines_alive, 3);
    assert_eq!(
        st.parts_done, st.parts_total,
        "failed part must be re-run elsewhere"
    );
    assert_eq!(
        st.records_processed, DATASET_EVENTS,
        "every record processed exactly once"
    );
    assert_eq!(s.failures().len(), 1);

    // Compare against serial reference to prove exactness post-recovery.
    let records = manager
        .locator()
        .fetch(&DatasetId::new("lc-higgs"))
        .unwrap()
        .records
        .clone();
    let mut serial_host = AidaHost::new();
    ipa_core::run_analyzer_serial(
        &mut HiggsSearchAnalyzer::default(),
        &records,
        &mut serial_host,
    )
    .unwrap();
    let recovered = s.results().unwrap();
    let a = serial_host
        .tree
        .get("/higgs/bb_mass")
        .unwrap()
        .as_h1()
        .unwrap();
    let b = recovered.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a.all_entries(), b.all_entries());
    s.close();
}

#[test]
fn all_engines_failing_is_an_error() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(0, 10);
    s.inject_failure(1, 10);
    s.run().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match s.poll() {
            Err(CoreError::AllEnginesFailed) => break,
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("all-engines-failed never surfaced")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    s.close();
}

#[test]
fn run_events_after_total_engine_loss_is_an_error() {
    // Regression: run_events used to lack the engines_alive() == 0 guard
    // that run() has, silently "starting" a run no engine would perform.
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(0, 10);
    s.inject_failure(1, 10);
    s.run().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match s.poll() {
            Err(CoreError::AllEnginesFailed) => break,
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("all-engines-failed never surfaced")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(matches!(
        s.run_events(100),
        Err(CoreError::AllEnginesFailed)
    ));
    assert!(matches!(s.run(), Err(CoreError::AllEnginesFailed)));
    s.close();
}

#[test]
fn retry_budget_keeps_engine_alive_and_run_exact() {
    // An injected fault is consumed when it fires, so with a retry budget
    // the same engine gets its part back and completes it: the run
    // finishes with every engine alive and results identical to a
    // failure-free serial pass.
    let (manager, proxy) = setup_with(IpaConfig {
        engines_per_session: 4,
        publish_every: 200,
        max_part_retries: 2,
        ..Default::default()
    });
    let mut s = manager.create_session(&proxy, 0.0, 4).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(1, 137);
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(120)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.engines_alive, 4, "retried engine must stay alive");
    assert_eq!(st.parts_done, st.parts_total);
    assert_eq!(st.records_processed, DATASET_EVENTS);
    assert_eq!(s.failures().len(), 1);
    assert_eq!(s.failures()[0].engine, 1);
    assert!(s.failures()[0].part.is_some());
    assert_eq!(s.failures()[0].epoch, st.epoch);

    let records = manager
        .locator()
        .fetch(&DatasetId::new("lc-higgs"))
        .unwrap()
        .records
        .clone();
    let mut serial_host = AidaHost::new();
    ipa_core::run_analyzer_serial(
        &mut HiggsSearchAnalyzer::default(),
        &records,
        &mut serial_host,
    )
    .unwrap();
    let recovered = s.results().unwrap();
    let a = serial_host
        .tree
        .get("/higgs/bb_mass")
        .unwrap()
        .as_h1()
        .unwrap();
    let b = recovered.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a.all_entries(), b.all_entries());
    s.close();
}

#[test]
fn registry_progress_resets_across_reruns() {
    // Regression: completed_records was never reset on rewind, so the
    // registry's per-engine progress inflated by one dataset per re-run.
    let (manager, proxy) = setup(3);
    let reg = manager.worker_registry().clone();
    let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let total = |workers: &[ipa_core::WorkerInfo]| -> u64 {
        workers.iter().map(|w| w.records_processed).sum()
    };
    assert_eq!(total(&reg.session_workers(s.id())), DATASET_EVENTS);

    s.rewind().unwrap();
    assert_eq!(
        total(&reg.session_workers(s.id())),
        0,
        "rewind must zero registry progress"
    );

    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(
        total(&reg.session_workers(s.id())),
        DATASET_EVENTS,
        "second pass must count one dataset, not two"
    );
    s.close();
}

#[test]
fn stop_then_run_restarts_parts_from_zero() {
    // stop() diverges from pause(): engines drop their position, so a
    // later run restarts each part at record 0 instead of resuming.
    let (manager, proxy) = setup(1);
    let mut s = manager.create_session(&proxy, 0.0, 1).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run_events(300).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if s.poll().unwrap().records_processed == 300 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "run_events stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    s.stop().unwrap();
    assert_eq!(s.poll().unwrap().state, RunState::Stopped);

    // A resume from 300 would report 400; a restart reports 100.
    s.run_events(100).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let processed = s.poll().unwrap().records_processed;
        if processed != 300 {
            assert_eq!(processed, 100, "stop must drop the engine position");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "restart stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    s.close();
}

#[test]
fn wait_finished_timeout_is_an_error() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    // Never started: a zero-duration wait can only time out, and must say
    // so instead of returning a success-shaped status.
    match s.wait_finished(Duration::ZERO) {
        Err(CoreError::Timeout(Some(st))) => {
            assert_eq!(st.state, RunState::Idle);
            assert_eq!(st.records_processed, 0);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    s.close();
}

#[test]
fn operations_require_prerequisites() {
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    assert!(matches!(s.run(), Err(CoreError::NoDataset)));
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    assert!(matches!(s.run(), Err(CoreError::NoCode)));
    assert!(matches!(
        s.select_dataset(&DatasetId::new("missing")),
        Err(CoreError::NotLocatable(_))
    ));
    // Bad script surfaces at load time.
    assert!(matches!(
        s.load_code(AnalysisCode::Script("fn broken(".into())),
        Err(CoreError::Code(_))
    ));
    s.close();
    assert!(matches!(s.poll(), Err(CoreError::SessionClosed)));
}

#[test]
fn changing_dataset_mid_session() {
    // §1: the user "must be able to … change the dataset during the
    // analysis session".
    let (manager, proxy) = setup(2);
    let ds2 = ipa_dataset::generate_dataset(
        "lc-small",
        "Smaller sample",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: 500,
            seed: 5,
            ..Default::default()
        }),
    );
    manager
        .publish_dataset("/lc/simulation", ds2, ipa_catalog::Metadata::new())
        .unwrap();

    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();

    // Switch datasets; code stays loaded.
    s.select_dataset(&DatasetId::new("lc-small")).unwrap();
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(st.records_processed, 500);
    s.close();
}

#[test]
fn more_parts_than_engines_still_completes() {
    // Session with 2 engines but a dataset split for 2; then kill one so a
    // single engine drains the queue.
    let (manager, proxy) = setup(2);
    let mut s = manager.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(0, 50);
    s.run().unwrap();
    let st = s.wait_finished(Duration::from_secs(120)).unwrap();
    assert_eq!(st.state, RunState::Finished);
    assert_eq!(st.engines_alive, 1);
    assert_eq!(st.records_processed, DATASET_EVENTS);
    s.close();
}

#[test]
fn worker_registry_tracks_session_lifecycle() {
    let (manager, proxy) = setup(3);
    let reg = manager.worker_registry().clone();
    assert_eq!(reg.active_sessions(), 0);

    let mut s = manager.create_session(&proxy, 0.0, 3).unwrap();
    assert_eq!(reg.active_sessions(), 1);
    let workers = reg.session_workers(s.id());
    assert_eq!(workers.len(), 3);
    assert!(workers
        .iter()
        .all(|w| w.state == ipa_core::WorkerState::Ready));
    assert!(workers[0].host.contains("slac.stanford.edu"));

    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(2, 100);
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();

    let workers = reg.session_workers(s.id());
    assert_eq!(
        workers
            .iter()
            .filter(|w| w.state == ipa_core::WorkerState::Failed)
            .count(),
        1
    );
    let total: u64 = workers.iter().map(|w| w.records_processed).sum();
    assert!(total >= DATASET_EVENTS, "registry progress: {total}");
    assert!(reg.render().contains("Failed"));

    s.close();
    assert_eq!(reg.active_sessions(), 0);
    assert!(reg
        .session_workers(1)
        .iter()
        .all(|w| w.state == ipa_core::WorkerState::Shutdown));
}

#[test]
fn staging_report_bridges_to_cost_model() {
    let (manager, proxy) = setup(4);
    let mut s = manager.create_session(&proxy, 0.0, 4).unwrap();
    assert!(matches!(
        s.staging_report(&ipa_simgrid::PaperCalibration::paper2006()),
        Err(CoreError::NoDataset)
    ));
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    let report = s
        .staging_report(&ipa_simgrid::PaperCalibration::paper2006())
        .unwrap();
    assert_eq!(report.nodes, 4);
    assert!(report.total_s > 0.0);
    assert!((report.dataset_mb - s.dataset().unwrap().size_mb()).abs() < 1e-9);
    s.close();
}

#[test]
fn hierarchical_merge_matches_flat_in_session() {
    let (manager, proxy) = setup(6);
    let mut s = manager.create_session(&proxy, 0.0, 6).unwrap();
    s.select_dataset(&DatasetId::new("lc-higgs")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let flat = s.results().unwrap();
    let hier = s.results_hierarchical(2).unwrap();
    // Counts are exact; weights may differ by float reassociation only.
    let a = flat.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    let b = hier.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a.all_entries(), b.all_entries());
    for i in 0..a.axis().bins() {
        assert_eq!(a.bin_entries(i), b.bin_entries(i), "bin {i}");
        assert!((a.bin_height(i) - b.bin_height(i)).abs() < 1e-9);
    }
    s.close();
}

//! Staging-plane integration tests: the split cache across re-selects,
//! restage determinism, transfer-fault injection with retry budgets, and
//! record-range dataset views — all driven through real sessions with
//! real engines, the way `select_dataset` exercises the plane in
//! production.

use std::time::Duration;

use ipa_core::{
    AnalysisCode, CoreError, HiggsSearchAnalyzer, IpaConfig, ManagerNode, RunState, StageFaultPlan,
};
use ipa_dataset::{DatasetId, EventGeneratorConfig, GeneratorConfig};
use ipa_script::AidaHost;
use ipa_simgrid::{SecurityDomain, VoPolicy};

const DATASET_EVENTS: u64 = 2_000;

fn manager_with(config: IpaConfig) -> (ManagerNode, ipa_simgrid::GridProxy) {
    let sec = SecurityDomain::new("stage-site", 11).with_policy(VoPolicy::new("vo", 16));
    let m = ManagerNode::new("stage-site", sec.clone(), config);
    let ds = ipa_dataset::generate_dataset(
        "ds",
        "staging test events",
        &GeneratorConfig::Event(EventGeneratorConfig {
            events: DATASET_EVENTS,
            ..Default::default()
        }),
    );
    m.publish_dataset("/d", ds, ipa_catalog::Metadata::new())
        .unwrap();
    (m, sec.issue_proxy("/CN=stager", "vo", 0.0, 1e6))
}

fn manager() -> (ManagerNode, ipa_simgrid::GridProxy) {
    manager_with(IpaConfig {
        publish_every: 200,
        ..Default::default()
    })
}

/// Serial reference pass over the published records, for bit-exactness
/// comparisons after staged/parallel runs.
fn serial_reference(m: &ManagerNode, range: Option<(usize, usize)>) -> AidaHost {
    let records = m.locator().fetch(&DatasetId::new("ds")).unwrap().records;
    let slice = match range {
        Some((a, b)) => &records[a..b],
        None => &records[..],
    };
    let mut host = AidaHost::new();
    ipa_core::run_analyzer_serial(&mut HiggsSearchAnalyzer::default(), slice, &mut host).unwrap();
    host
}

#[test]
fn reselect_is_a_cache_hit_with_identical_results() {
    let (m, proxy) = manager();
    let mut s = m.create_session(&proxy, 0.0, 3).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    let st = s.staging_stats();
    assert_eq!(st.cache_misses, 1);
    assert_eq!(st.cache_hits, 0);
    assert!(st.parts_staged >= 1);
    assert!(st.chunks_sent >= st.parts_staged, "parts move as ≥1 chunk");
    assert!(st.bytes_moved > 0);

    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    s.wait_finished(Duration::from_secs(60)).unwrap();
    let first = s.results().unwrap();
    let staged_once = s.staging_stats();

    // Re-selecting the same dataset restages from the split cache: no new
    // parts or bytes move, and the rerun is bit-identical.
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    let st = s.staging_stats();
    assert_eq!(st.cache_hits, 1, "re-select must hit the split cache");
    assert_eq!(st.cache_misses, 1);
    assert_eq!(
        st.parts_staged, staged_once.parts_staged,
        "cache hit stages no new parts"
    );
    assert_eq!(
        st.bytes_moved, staged_once.bytes_moved,
        "cache hit moves no new bytes"
    );

    s.run().unwrap();
    let done = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(done.records_processed, DATASET_EVENTS);
    let second = s.results().unwrap();
    assert_eq!(first, second, "cached restage must reproduce the run");
    s.close();
}

#[test]
fn select_rewind_run_matches_uncached_run() {
    let (m, proxy) = manager();

    // Cached path: select once, run, rewind (same staged parts), run again.
    let mut a = m.create_session(&proxy, 0.0, 4).unwrap();
    a.select_dataset(&DatasetId::new("ds")).unwrap();
    a.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    a.run().unwrap();
    a.wait_finished(Duration::from_secs(60)).unwrap();
    let first = a.results().unwrap();
    a.rewind().unwrap();
    a.run().unwrap();
    a.wait_finished(Duration::from_secs(60)).unwrap();
    let rewound = a.results().unwrap();
    assert_eq!(first, rewound);
    a.close();

    // Uncached path: a fresh session (fresh plane, cold cache) and a
    // serial single-threaded pass must both agree with it.
    let mut b = m.create_session(&proxy, 0.0, 4).unwrap();
    b.select_dataset(&DatasetId::new("ds")).unwrap();
    assert_eq!(b.staging_stats().cache_hits, 0, "fresh plane is cold");
    b.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    b.run().unwrap();
    b.wait_finished(Duration::from_secs(60)).unwrap();
    let uncached = b.results().unwrap();
    assert_eq!(first, uncached);
    b.close();

    let serial = serial_reference(&m, None);
    let a1 = serial.tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    let b1 = first.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a1.all_entries(), b1.all_entries());
}

#[test]
fn transfer_faults_within_budget_retry_to_identical_results() {
    let (m, proxy) = manager_with(IpaConfig {
        publish_every: 200,
        stage_retries: 3,
        ..Default::default()
    });
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.inject_stage_faults(StageFaultPlan::default().fail_part(0, 2).fail_part(1, 1));
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    let st = s.staging_stats();
    assert_eq!(st.retries, 3, "every injected fault absorbed as a retry");
    assert_eq!(st.transfer_failures, 0);

    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let done = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(done.state, RunState::Finished);
    assert_eq!(done.records_processed, DATASET_EVENTS);

    // Retried staging must be invisible in the physics: identical to the
    // serial reference, bin for bin.
    let serial = serial_reference(&m, None);
    let tree = s.results().unwrap();
    let a = serial.tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    let b = tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a.all_entries(), b.all_entries());
    for i in 0..a.axis().bins() {
        assert_eq!(a.bin_entries(i), b.bin_entries(i), "bin {i}");
    }
    s.close();
}

#[test]
fn exhausted_transfer_retries_fail_clean_and_session_survives() {
    let (m, proxy) = manager_with(IpaConfig {
        publish_every: 200,
        stage_retries: 1,
        ..Default::default()
    });
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.inject_stage_faults(StageFaultPlan::default().fail_part(0, 100));
    let err = s.select_dataset(&DatasetId::new("ds")).unwrap_err();
    match err {
        CoreError::StagingFailure { part, attempts } => {
            assert_eq!(part, 0);
            assert!(attempts >= 2, "budget of 1 retry allows 2 attempts");
        }
        other => panic!("expected StagingFailure, got {other:?}"),
    }
    assert_eq!(s.staging_stats().transfer_failures, 1);
    // The failed select left no dataset behind — the session is still on
    // its previous (no) dataset, with no epoch bump and no hung engines.
    assert!(s.dataset().is_none());
    assert!(matches!(s.run(), Err(CoreError::NoDataset)));

    // Clearing the fault plan makes the same select succeed, and the
    // session runs to completion: nothing leaked from the failed attempt.
    s.inject_stage_faults(StageFaultPlan::default());
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let done = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(done.state, RunState::Finished);
    assert_eq!(done.records_processed, DATASET_EVENTS);
    s.close();
}

#[test]
fn record_range_view_selects_and_runs_the_slice() {
    let (m, proxy) = manager();
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds@500..1500")).unwrap();
    assert_eq!(s.dataset().unwrap().records, 1_000);
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.run().unwrap();
    let done = s.wait_finished(Duration::from_secs(60)).unwrap();
    assert_eq!(done.records_processed, 1_000);

    // The view's physics equals a serial pass over records [500, 1500).
    let serial = serial_reference(&m, Some((500, 1_500)));
    let tree = s.results().unwrap();
    let a = serial.tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    let b = tree.get("/higgs/bb_mass").unwrap().as_h1().unwrap();
    assert_eq!(a.all_entries(), b.all_entries());

    // Malformed and out-of-bounds ranges are not locatable.
    for bad in ["ds@1500..500", "ds@0..99999", "ds@x..y", "@0..5"] {
        assert!(
            matches!(
                s.select_dataset(&DatasetId::new(bad)),
                Err(CoreError::NotLocatable(_))
            ),
            "{bad} must not locate"
        );
    }
    s.close();
}

#[test]
fn select_after_total_engine_loss_is_a_structured_error() {
    let (m, proxy) = manager();
    let mut s = m.create_session(&proxy, 0.0, 2).unwrap();
    s.select_dataset(&DatasetId::new("ds")).unwrap();
    s.load_code(AnalysisCode::Native("higgs-search".into()))
        .unwrap();
    s.inject_failure(0, 10);
    s.inject_failure(1, 10);
    s.run().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match s.poll() {
            Err(CoreError::AllEnginesFailed) => break,
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("all-engines-failed never surfaced")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    // Selecting with zero living engines is an immediate structured error,
    // not a divide-by-`max(1)` split onto nobody.
    assert!(matches!(
        s.select_dataset(&DatasetId::new("ds")),
        Err(CoreError::AllEnginesFailed)
    ));
    s.close();
}

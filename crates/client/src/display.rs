//! The Figure-4 dashboard: a textual rendering of everything the JAS
//! screenshot shows — session state, engine panel, interactive-control
//! hints, and the live merged histograms — plus SVG export.

use ipa_aida::render::{render_h1_ascii, render_h2_ascii, render_profile_ascii, AsciiOptions};
use ipa_aida::render::{render_h1_svg, render_h2_svg, SvgOptions};
use ipa_aida::{AidaObject, Tree};
use ipa_core::SessionStatus;

/// Dashboard rendering options.
#[derive(Debug, Clone)]
pub struct DashboardOptions {
    /// Histogram bar width.
    pub plot_width: usize,
    /// Maximum histograms rendered (the rest are listed by name).
    pub max_plots: usize,
    /// Show recent log lines.
    pub show_logs: bool,
}

impl Default for DashboardOptions {
    fn default() -> Self {
        DashboardOptions {
            plot_width: 50,
            max_plots: 4,
            show_logs: true,
        }
    }
}

/// Render the live dashboard: status header + controls hint + plots.
pub fn render_dashboard(
    title: &str,
    status: &SessionStatus,
    tree: &Tree,
    opts: &DashboardOptions,
) -> String {
    let mut out = String::new();
    let bar = "=".repeat(72);
    out.push_str(&bar);
    out.push('\n');
    out.push_str(&format!("IPA session — {title}\n"));
    out.push_str(&bar);
    out.push('\n');
    out.push_str(&format!(
        "state: {:?}   epoch: {}   engines alive: {}   parts: {}/{}\n",
        status.state, status.epoch, status.engines_alive, status.parts_done, status.parts_total
    ));
    let pct = status.progress() * 100.0;
    let filled = (status.progress() * 40.0).round() as usize;
    out.push_str(&format!(
        "progress: [{}{}] {:.1}%  ({} / {} records)\n",
        "#".repeat(filled.min(40)),
        "-".repeat(40usize.saturating_sub(filled)),
        pct,
        status.records_processed,
        status.records_total
    ));
    out.push_str("controls: run | pause | stop | rewind | run N events | reload code\n");

    if opts.show_logs && !status.new_logs.is_empty() {
        out.push_str(&bar);
        out.push('\n');
        for (engine, msg) in &status.new_logs {
            out.push_str(&format!("[engine {engine}] {msg}\n"));
        }
    }

    out.push_str(&bar);
    out.push('\n');
    let ascii = AsciiOptions {
        width: opts.plot_width,
        ..AsciiOptions::default()
    };
    for (i, (path, obj)) in tree.iter().enumerate() {
        if i >= opts.max_plots {
            let remaining: Vec<&str> = tree.paths().skip(opts.max_plots).collect();
            out.push_str(&format!(
                "… and {} more: {}\n",
                remaining.len(),
                remaining.join(", ")
            ));
            break;
        }
        out.push_str(&format!("--- {path} ---\n"));
        match obj {
            AidaObject::H1(h) => out.push_str(&render_h1_ascii(h, &ascii)),
            AidaObject::H2(h) => out.push_str(&render_h2_ascii(h, &ascii)),
            AidaObject::P1(p) => out.push_str(&render_profile_ascii(p, &ascii)),
            other => out.push_str(&format!(
                "<{} '{}' with {} entries>\n",
                other.kind(),
                other.title(),
                other.entries()
            )),
        }
    }
    out
}

/// Write one SVG file per 1-D/2-D histogram in the tree into `dir`;
/// returns the written file names. Paths map `/higgs/bb_mass` →
/// `higgs_bb_mass.svg`.
pub fn export_svg_plots(tree: &Tree, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let opts = SvgOptions::default();
    let mut written = Vec::new();
    for (path, obj) in tree.iter() {
        let svg = match obj {
            AidaObject::H1(h) => render_h1_svg(h, &opts),
            AidaObject::H2(h) => render_h2_svg(h, &opts),
            _ => continue,
        };
        let name = format!("{}.svg", path.trim_start_matches('/').replace('/', "_"));
        std::fs::write(dir.join(&name), svg)?;
        written.push(name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_aida::Histogram1D;
    use ipa_core::RunState;

    fn status() -> SessionStatus {
        SessionStatus {
            state: RunState::Running,
            records_processed: 500,
            records_total: 1000,
            parts_done: 1,
            parts_total: 4,
            engines_alive: 4,
            epoch: 1,
            sched: ipa_core::SchedStats::default(),
            results: ipa_core::ResultPlaneStats::default(),
            staging: ipa_core::StagingStats::default(),
            new_logs: vec![(0, "booked plots".into())],
        }
    }

    fn tree() -> Tree {
        let mut t = Tree::new();
        let mut h = Histogram1D::new("mass", 10, 0.0, 240.0);
        h.fill1(120.0);
        t.put("/higgs/bb_mass", h).unwrap();
        t
    }

    #[test]
    fn dashboard_contains_all_panels() {
        let s = render_dashboard(
            "alice@slac",
            &status(),
            &tree(),
            &DashboardOptions::default(),
        );
        assert!(s.contains("alice@slac"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("engines alive: 4"));
        assert!(s.contains("parts: 1/4"));
        assert!(s.contains("/higgs/bb_mass"));
        assert!(s.contains("[engine 0] booked plots"));
        assert!(s.contains("rewind"));
    }

    #[test]
    fn dashboard_truncates_plot_list() {
        let mut t = Tree::new();
        for i in 0..8 {
            t.put(
                &format!("/p/h{i}"),
                Histogram1D::new(format!("h{i}"), 5, 0.0, 1.0),
            )
            .unwrap();
        }
        let s = render_dashboard(
            "x",
            &status(),
            &t,
            &DashboardOptions {
                max_plots: 2,
                ..Default::default()
            },
        );
        assert!(s.contains("and 6 more"));
    }

    #[test]
    fn svg_export_writes_files() {
        let dir = std::env::temp_dir().join("ipa_client_svg_test");
        let written = export_svg_plots(&tree(), &dir).unwrap();
        assert_eq!(written, vec!["higgs_bb_mass.svg".to_string()]);
        let content = std::fs::read_to_string(dir.join("higgs_bb_mass.svg")).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_progress_is_100_percent() {
        let st = SessionStatus {
            records_total: 0,
            records_processed: 0,
            ..status()
        };
        let s = render_dashboard("x", &st, &Tree::new(), &DashboardOptions::default());
        assert!(s.contains("100.0%"));
    }
}

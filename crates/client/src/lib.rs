//! `ipa-client` — the desktop client layer.
//!
//! The paper's client is Java Analysis Studio 3 extended with three
//! plug-ins (grid proxy, dataset catalog, remote data). This crate is the
//! headless equivalent:
//!
//! * [`IpaClient`] — proxy creation (`grid_proxy_init`), catalog browsing
//!   and searching, and session creation against a
//!   [`ManagerNode`](ipa_core::ManagerNode),
//! * [`monitor_run`] — the polling loop ("a separate plug-in … constantly
//!   polls the AIDA manager", §3.7) with a user callback per update,
//! * [`display`] — the Figure-4 dashboard: session state, engine panel,
//!   live ASCII histograms, and SVG export of every plot in the merged
//!   tree.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use ipa_client::IpaClient;
//! use ipa_core::{AnalysisCode, IpaConfig, ManagerNode};
//! use ipa_simgrid::{SecurityDomain, VoPolicy};
//!
//! let security = SecurityDomain::new("site", 42)
//!     .with_policy(VoPolicy::new("ilc", 16));
//! let manager = Arc::new(ManagerNode::new("site", security.clone(), IpaConfig::default()));
//! let mut client = IpaClient::new(manager);
//! client.grid_proxy_init(&security, "/CN=alice", "ilc", 0.0, 7200.0);
//! let mut session = client.connect(0.0, 4).unwrap();
//! # let _ = session;
//! ```

#![warn(missing_docs)]

pub mod display;
pub mod remote;
pub mod shell;

use std::sync::Arc;
use std::time::{Duration, Instant};

use ipa_catalog::{CatalogEntry, ListItem};
use ipa_core::{CoreError, ManagerNode, RunState, Session, SessionStatus};
use ipa_dataset::DatasetId;
use ipa_simgrid::{GridProxy, SecurityDomain};

pub use display::{export_svg_plots, render_dashboard, DashboardOptions};
pub use remote::{RemoteError, RemoteSession};
pub use shell::Shell;

/// The client application: manager endpoint + user credential.
pub struct IpaClient {
    manager: Arc<ManagerNode>,
    proxy: Option<GridProxy>,
}

impl IpaClient {
    /// Point the client at a manager node (the paper's service URL).
    pub fn new(manager: Arc<ManagerNode>) -> Self {
        IpaClient {
            manager,
            proxy: None,
        }
    }

    /// The `grid-proxy-init` step: create a delegated credential from the
    /// user's identity (§3.1's grid proxy plug-in).
    pub fn grid_proxy_init(
        &mut self,
        ca: &SecurityDomain,
        subject: &str,
        vo: &str,
        now: f64,
        lifetime_s: f64,
    ) -> &GridProxy {
        self.proxy = Some(ca.issue_proxy(subject, vo, now, lifetime_s));
        self.proxy.as_ref().expect("just set")
    }

    /// The active proxy, if one was created.
    pub fn proxy(&self) -> Option<&GridProxy> {
        self.proxy.as_ref()
    }

    /// Browse a catalog folder (the Figure-3 chooser).
    pub fn browse(&self, folder: &str) -> Result<Vec<ListItem>, CoreError> {
        self.manager.browse(folder)
    }

    /// Search the catalog with query text.
    pub fn search(&self, query: &str) -> Result<Vec<CatalogEntry>, CoreError> {
        self.manager.search(query)
    }

    /// Render the whole catalog tree.
    pub fn catalog_tree(&self) -> String {
        self.manager.catalog_tree()
    }

    /// Step 1: mutually authenticate and create a session with up to
    /// `engines` analysis engines (0 = site default).
    pub fn connect(&self, now: f64, engines: usize) -> Result<Session, CoreError> {
        let proxy = self
            .proxy
            .as_ref()
            .ok_or(CoreError::Auth(ipa_simgrid::AuthError::BadSignature))?;
        self.manager.create_session(proxy, now, engines)
    }

    /// Convenience: search for exactly one dataset matching `query`.
    pub fn find_dataset(&self, query: &str) -> Result<DatasetId, CoreError> {
        let hits = self.search(query)?;
        match hits.len() {
            1 => Ok(hits[0].descriptor.id.clone()),
            0 => Err(CoreError::Catalog(format!("no dataset matches '{query}'"))),
            n => Err(CoreError::Catalog(format!(
                "{n} datasets match '{query}', expected exactly one"
            ))),
        }
    }
}

/// Outcome of a monitored run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Final status.
    pub status: SessionStatus,
    /// Number of poll iterations performed.
    pub polls: u64,
    /// Time from run start to the *first* partial result — the paper's
    /// interactivity yardstick ("partial results on time scales of less
    /// than a minute").
    pub first_feedback: Option<Duration>,
    /// Total wall-clock of the run.
    pub elapsed: Duration,
}

/// Start the run and poll until it finishes, invoking `on_update` after
/// every poll that changed the processed-record count. This is the
/// client's live-histogram loop.
pub fn monitor_run(
    session: &mut Session,
    poll_interval: Duration,
    timeout: Duration,
    mut on_update: impl FnMut(&SessionStatus, &mut Session),
) -> Result<RunReport, CoreError> {
    let start = Instant::now();
    session.run()?;
    let mut polls = 0u64;
    let mut last_processed = u64::MAX;
    let mut first_feedback = None;
    loop {
        let status = session.poll()?;
        polls += 1;
        if status.records_processed != last_processed {
            if status.records_processed > 0 && first_feedback.is_none() {
                first_feedback = Some(start.elapsed());
            }
            last_processed = status.records_processed;
            on_update(&status, session);
        }
        if status.state == RunState::Finished {
            return Ok(RunReport {
                status,
                polls,
                first_feedback,
                elapsed: start.elapsed(),
            });
        }
        if start.elapsed() > timeout {
            return Ok(RunReport {
                status,
                polls,
                first_feedback,
                elapsed: start.elapsed(),
            });
        }
        std::thread::sleep(poll_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{AnalysisCode, IpaConfig};
    use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
    use ipa_simgrid::VoPolicy;

    fn rig() -> (Arc<ManagerNode>, SecurityDomain) {
        let sec = SecurityDomain::new("site", 3).with_policy(VoPolicy::new("ilc", 8));
        let manager = Arc::new(ManagerNode::new(
            "site",
            sec.clone(),
            IpaConfig {
                publish_every: 100,
                ..Default::default()
            },
        ));
        let ds = ipa_dataset::generate_dataset(
            "lc-1",
            "LC events",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 1200,
                ..Default::default()
            }),
        );
        manager
            .publish_dataset("/lc", ds, ipa_catalog::Metadata::new())
            .unwrap();
        (manager, sec)
    }

    #[test]
    fn connect_requires_proxy() {
        let (manager, _sec) = rig();
        let client = IpaClient::new(manager);
        assert!(matches!(client.connect(0.0, 2), Err(CoreError::Auth(_))));
    }

    #[test]
    fn full_client_flow_with_monitoring() {
        let (manager, sec) = rig();
        let mut client = IpaClient::new(manager);
        client.grid_proxy_init(&sec, "/CN=alice", "ilc", 0.0, 7200.0);
        assert!(client.proxy().is_some());

        let id = client.find_dataset("id == \"lc-1\"").unwrap();
        let mut session = client.connect(0.0, 3).unwrap();
        session.select_dataset(&id).unwrap();
        session
            .load_code(AnalysisCode::Native("higgs-search".into()))
            .unwrap();

        let mut updates = 0;
        let report = monitor_run(
            &mut session,
            Duration::from_micros(100),
            Duration::from_secs(60),
            |_, _| updates += 1,
        )
        .unwrap();
        assert_eq!(report.status.state, RunState::Finished);
        assert_eq!(report.status.records_processed, 1200);
        assert!(updates >= 1);
        assert!(report.first_feedback.is_some());
        session.close();
    }

    #[test]
    fn find_dataset_disambiguation() {
        let (manager, sec) = rig();
        let ds2 = ipa_dataset::generate_dataset(
            "lc-2",
            "More LC events",
            &GeneratorConfig::Event(EventGeneratorConfig {
                events: 10,
                seed: 9,
                ..Default::default()
            }),
        );
        manager
            .publish_dataset("/lc", ds2, ipa_catalog::Metadata::new())
            .unwrap();
        let mut client = IpaClient::new(manager);
        client.grid_proxy_init(&sec, "/CN=a", "ilc", 0.0, 7200.0);
        assert!(client.find_dataset("id ~ \"lc-*\"").is_err()); // ambiguous
        assert!(client.find_dataset("id == \"lc-2\"").is_ok());
        assert!(client.find_dataset("id == \"zzz\"").is_err()); // none
        assert_eq!(client.browse("/lc").unwrap().len(), 2);
        assert!(client.catalog_tree().contains("lc-1"));
    }
}

//! `ipa-shell` — an interactive terminal client for the IPA framework.
//!
//! Stands up a demo grid site in-process (datasets for all three domains),
//! issues a proxy, and drops into a command loop. Type `help` for the
//! command list. This is the terminal counterpart of the paper's JAS GUI.

use std::io::{BufRead, Write};
use std::sync::Arc;

use ipa_client::Shell;
use ipa_core::{IpaConfig, ManagerNode};
use ipa_dataset::{
    generate_dataset, DnaGeneratorConfig, EventGeneratorConfig, GeneratorConfig,
    TradeGeneratorConfig,
};
use ipa_simgrid::{SecurityDomain, VoPolicy};

fn main() {
    let security = SecurityDomain::new("demo-site", 2006).with_policy(VoPolicy::new("ilc", 16));
    let manager = Arc::new(ManagerNode::new(
        "demo.site",
        security.clone(),
        IpaConfig::default(),
    ));
    let pubs: [(&str, ipa_dataset::Dataset); 3] = [
        (
            "/lc/simulation",
            generate_dataset(
                "lc-higgs",
                "Simulated LC events",
                &GeneratorConfig::Event(EventGeneratorConfig {
                    events: 50_000,
                    ..Default::default()
                }),
            ),
        ),
        (
            "/bio",
            generate_dataset(
                "dna-lane1",
                "Sequencing lane",
                &GeneratorConfig::Dna(DnaGeneratorConfig {
                    reads: 20_000,
                    ..Default::default()
                }),
            ),
        ),
        (
            "/finance",
            generate_dataset(
                "trades-day1",
                "Trading day",
                &GeneratorConfig::Trade(TradeGeneratorConfig {
                    trades: 50_000,
                    ..Default::default()
                }),
            ),
        ),
    ];
    for (folder, ds) in pubs {
        manager
            .publish_dataset(folder, ds, ipa_catalog::Metadata::new())
            .expect("publish demo dataset");
    }
    let proxy = security.issue_proxy("/CN=demo-user", "ilc", 0.0, 86_400.0);
    let mut shell = Shell::new(manager, proxy);

    println!("IPA interactive shell — type 'help' for commands");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("ipa> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let out = shell.exec(&line);
                if !out.is_empty() {
                    println!("{out}");
                }
                if shell.done {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

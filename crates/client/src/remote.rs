//! Remote sessions: the client side of the TCP web-services gateway.
//!
//! [`RemoteSession`] mirrors the local [`Session`](ipa_core::Session) API
//! but every call crosses the network through
//! [`WsClient`](ipa_core::WsClient) — this is the deployment shape of the
//! paper, where the JAS client and the manager node are different machines.

use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ipa_aida::Tree;
use ipa_core::{
    FailureRecord, RunState, SchedStats, SessionStatus, StagingStats, WsClient, WsRequest,
    WsResponse,
};
use ipa_simgrid::GridProxy;

/// Errors from remote calls: transport problems or server-side rejections,
/// both as human-readable strings (they crossed the wire as text anyway).
pub type RemoteError = String;

fn unexpected(what: &str, got: &WsResponse) -> RemoteError {
    format!("expected {what}, got {got:?}")
}

/// A session living on a remote manager node, driven over TCP.
pub struct RemoteSession {
    client: WsClient,
    session: u64,
    engines: usize,
    /// Last merged tree received, keyed by the server's result version.
    /// Lets [`RemoteSession::results`] send `if_newer_than` so unchanged
    /// polls cross the wire as a constant-size "unchanged" message.
    results_cache: Option<(u64, Arc<Tree>)>,
}

impl RemoteSession {
    /// Connect to a gateway, authenticate with `proxy`, and create a
    /// session with up to `engines` engines (0 = site default).
    pub fn create(
        addr: impl ToSocketAddrs,
        proxy: GridProxy,
        now: f64,
        engines: usize,
    ) -> Result<Self, RemoteError> {
        let mut client = WsClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
        match client.call_ok(&WsRequest::CreateSession {
            proxy,
            now,
            engines,
        })? {
            WsResponse::SessionCreated { session, engines } => Ok(RemoteSession {
                client,
                session,
                engines,
                results_cache: None,
            }),
            other => Err(unexpected("SessionCreated", &other)),
        }
    }

    /// Reattach to a journaled session by id after a manager restart: the
    /// gateway replays the session's write-ahead log and rebuilds it with
    /// fresh engines — same epoch, same merged results, parts not durably
    /// completed re-queued. A session that was running comes back paused;
    /// call [`RemoteSession::run`] to continue it. No proxy is needed —
    /// the session id is the capability, like a WSRF endpoint reference.
    pub fn resume(addr: impl ToSocketAddrs, session: u64) -> Result<Self, RemoteError> {
        let mut client = WsClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
        match client.call_ok(&WsRequest::Resume { session })? {
            WsResponse::SessionCreated { session, engines } => Ok(RemoteSession {
                client,
                session,
                engines,
                results_cache: None,
            }),
            other => Err(unexpected("SessionCreated", &other)),
        }
    }

    /// Remote session id.
    pub fn id(&self) -> u64 {
        self.session
    }

    /// Engines granted at creation.
    pub fn engines(&self) -> usize {
        self.engines
    }

    fn simple(&mut self, req: WsRequest) -> Result<(), RemoteError> {
        match self.client.call_ok(&req)? {
            WsResponse::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Stage a dataset by id.
    pub fn select_dataset(&mut self, id: &str) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::SelectDataset {
            session,
            id: id.to_string(),
        })
    }

    /// Ship IPAScript source.
    pub fn load_script(&mut self, source: &str) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::LoadScript {
            session,
            source: source.to_string(),
        })
    }

    /// Select a site-registered native analyzer.
    pub fn load_native(&mut self, name: &str) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::LoadNative {
            session,
            name: name.to_string(),
        })
    }

    /// Start / resume the run.
    pub fn run(&mut self) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::Run { session })
    }

    /// Process at most `n` records per engine, then pause.
    pub fn run_events(&mut self, n: usize) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::RunEvents { session, n })
    }

    /// Pause the run.
    pub fn pause(&mut self) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::Pause { session })
    }

    /// Stop the run.
    pub fn stop(&mut self) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::Stop { session })
    }

    /// Rewind to record zero.
    pub fn rewind(&mut self) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::Rewind { session })
    }

    /// Poll: drains server-side events (failure recovery happens there)
    /// and returns the status snapshot.
    pub fn poll(&mut self) -> Result<SessionStatus, RemoteError> {
        let session = self.session;
        match self.client.call_ok(&WsRequest::Poll { session })? {
            WsResponse::Status(st) => Ok(st),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Fetch the merged result tree.
    ///
    /// The last tree is cached with its server-side version: when the
    /// results have not changed since, the server answers "unchanged" and
    /// the cached tree is returned without re-shipping it.
    pub fn results(&mut self) -> Result<Arc<Tree>, RemoteError> {
        let session = self.session;
        let if_newer_than = self.results_cache.as_ref().map(|(v, _)| *v);
        match self.client.call_ok(&WsRequest::Results {
            session,
            if_newer_than,
        })? {
            WsResponse::Tree { version, tree } => {
                let tree = Arc::new(tree);
                self.results_cache = Some((version, Arc::clone(&tree)));
                Ok(tree)
            }
            WsResponse::Unchanged { version } => match &self.results_cache {
                Some((v, tree)) if *v == version => Ok(Arc::clone(tree)),
                // Defensive: an "unchanged" for a version we don't hold
                // means the cache and server disagree — drop the cache so
                // the next call re-fetches the full tree.
                _ => {
                    self.results_cache = None;
                    Err(format!(
                        "server reported results unchanged at version {version}, \
                         but no cached copy is held"
                    ))
                }
            },
            other => Err(unexpected("Tree or Unchanged", &other)),
        }
    }

    /// Version of the last fetched merged results, if any.
    pub fn results_version(&self) -> Option<u64> {
        self.results_cache.as_ref().map(|(v, _)| *v)
    }

    /// Fetch the session's engine-failure records.
    pub fn failures(&mut self) -> Result<Vec<FailureRecord>, RemoteError> {
        let session = self.session;
        match self.client.call_ok(&WsRequest::Failures { session })? {
            WsResponse::Failures(f) => Ok(f),
            other => Err(unexpected("Failures", &other)),
        }
    }

    /// Fetch the session's scheduler statistics (policy, parts
    /// queued/stolen/speculated, per-engine throughput).
    pub fn sched_stats(&mut self) -> Result<SchedStats, RemoteError> {
        let session = self.session;
        match self.client.call_ok(&WsRequest::SchedStats { session })? {
            WsResponse::Sched(s) => Ok(s),
            other => Err(unexpected("Sched", &other)),
        }
    }

    /// Fetch the session's staging-plane statistics (parts/bytes/chunks
    /// moved, split-cache hits, transfer retries, phase timings).
    pub fn staging_stats(&mut self) -> Result<StagingStats, RemoteError> {
        let session = self.session;
        match self.client.call_ok(&WsRequest::StagingStats { session })? {
            WsResponse::Staging(s) => Ok(s),
            other => Err(unexpected("Staging", &other)),
        }
    }

    /// Poll until the run finishes. If `timeout` elapses first, returns an
    /// error describing how far the run got — never a success-shaped
    /// status.
    pub fn wait_finished(&mut self, timeout: Duration) -> Result<SessionStatus, RemoteError> {
        let deadline = Instant::now() + timeout;
        loop {
            let st = self.poll()?;
            if st.state == RunState::Finished {
                return Ok(st);
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "timed out after {timeout:?} in state {:?} ({} of {} records)",
                    st.state, st.records_processed, st.records_total
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Close the remote session (engines shut down server-side).
    pub fn close(mut self) -> Result<(), RemoteError> {
        let session = self.session;
        self.simple(WsRequest::CloseSession { session })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{IpaConfig, ManagerNode, WsGateway};
    use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
    use ipa_simgrid::{SecurityDomain, VoPolicy};
    use std::sync::Arc;

    #[test]
    fn remote_session_full_flow() {
        let sec = SecurityDomain::new("remote-site", 77).with_policy(VoPolicy::new("ilc", 8));
        let manager = Arc::new(ManagerNode::new(
            "remote-site",
            sec.clone(),
            IpaConfig {
                publish_every: 200,
                ..Default::default()
            },
        ));
        manager
            .publish_dataset(
                "/lc",
                ipa_dataset::generate_dataset(
                    "lc-remote",
                    "events",
                    &GeneratorConfig::Event(EventGeneratorConfig {
                        events: 1_500,
                        ..Default::default()
                    }),
                ),
                ipa_catalog::Metadata::new(),
            )
            .unwrap();
        let mut gw = WsGateway::serve(manager, ("127.0.0.1", 0)).unwrap();

        let proxy = sec.issue_proxy("/CN=far-away", "ilc", 0.0, 7200.0);
        let mut s = RemoteSession::create(gw.addr(), proxy, 0.0, 2).unwrap();
        assert_eq!(s.engines(), 2);
        s.select_dataset("lc-remote").unwrap();
        s.load_native("higgs-search").unwrap();
        s.run().unwrap();
        let st = s.wait_finished(Duration::from_secs(60)).unwrap();
        assert_eq!(st.state, RunState::Finished);
        assert_eq!(st.records_processed, 1_500);
        let tree = s.results().unwrap();
        assert!(tree.get("/higgs/bb_mass").unwrap().entries() > 0);
        // A second fetch with nothing new crosses the wire as "unchanged"
        // and is served from the client-side cache — same Arc, no copy.
        let again = s.results().unwrap();
        assert!(
            Arc::ptr_eq(&tree, &again),
            "unchanged results must be served from the cache"
        );
        assert!(s.results_version().is_some());
        assert!(s.failures().unwrap().is_empty());
        let sched = s.sched_stats().unwrap();
        assert_eq!(sched.parts_queued as usize, st.parts_total);
        // The staging plane saw exactly one staged select; re-selecting
        // the same dataset is answered by the split cache.
        let staging = s.staging_stats().unwrap();
        assert_eq!(staging.cache_misses, 1);
        assert_eq!(staging.cache_hits, 0);
        assert!(staging.parts_staged >= 1);
        assert!(staging.bytes_moved > 0);
        s.select_dataset("lc-remote").unwrap();
        let staging = s.staging_stats().unwrap();
        assert_eq!(staging.cache_hits, 1, "re-select must hit the split cache");
        s.close().unwrap();
        gw.shutdown();
    }

    #[test]
    fn remote_errors_surface_as_strings() {
        let sec = SecurityDomain::new("remote-site", 77).with_policy(VoPolicy::new("ilc", 8));
        let manager = Arc::new(ManagerNode::new(
            "remote-site",
            sec.clone(),
            IpaConfig::default(),
        ));
        let mut gw = WsGateway::serve(manager, ("127.0.0.1", 0)).unwrap();
        let proxy = sec.issue_proxy("/CN=x", "ilc", 0.0, 7200.0);
        let mut s = RemoteSession::create(gw.addr(), proxy, 0.0, 1).unwrap();
        let err = s.select_dataset("does-not-exist").unwrap_err();
        assert!(err.contains("located"), "{err}");
        let err = s.run().unwrap_err();
        assert!(err.contains("no dataset"), "{err}");
        s.close().unwrap();
        gw.shutdown();
    }
}

//! An interactive command shell over a session — the terminal counterpart
//! of the JAS GUI. Commands are parsed and executed by [`Shell::exec`],
//! which returns the text to print, so the whole surface is unit-testable;
//! the `ipa-shell` binary wires it to stdin/stdout.

use std::sync::Arc;
use std::time::Duration;

use ipa_aida::render::{render_h1_ascii, AsciiOptions};
use ipa_core::{AnalysisCode, ManagerNode, Session};
use ipa_dataset::DatasetId;
use ipa_simgrid::{GridProxy, PaperCalibration};

use crate::display::{export_svg_plots, render_dashboard, DashboardOptions};

/// Shell state: a manager endpoint, a credential, and (once `connect` has
/// run) a live session.
pub struct Shell {
    manager: Arc<ManagerNode>,
    proxy: GridProxy,
    session: Option<Session>,
    /// True once `quit` has been issued.
    pub done: bool,
}

const HELP: &str = "\
commands:
  tree                         show the catalog tree
  ls <folder>                  browse a catalog folder
  search <query>               metadata query (e.g. energy >= 500)
  connect <n>                  create a session with n engines
  resume <session-id>          recover a journaled session after a crash
  select <dataset-id>          stage a dataset
  native <name>                load a registered native analyzer
  script <file>                load IPAScript source from a file
  run | pause | stop | rewind  interactive controls
  runn <n>                     run n records per engine, then pause
  status                       poll and show the dashboard
  plot <path>                  ASCII-render one histogram
  fit <path> <lo> <hi>         Gaussian peak fit in a mass window
  report                       simulated 2006-grid staging cost
  workers                      engine registry panel
  sessions                     session directory (all tenants, VO, engines)
  pool                         shared engine-pool stats (leases, recycling)
  failures                     engine failure records (epoch, part, message)
  sched                        scheduler stats (policy, queue, steals, rates)
  results                      result-plane stats (version, dirty parts, merge cache)
  staging                      staging stats (parts, bytes, cache hits, retries)
  svg <dir>                    export all plots as SVG
  close                        close the session
  quit                         exit
";

impl Shell {
    /// New shell against a manager, with a ready-made proxy.
    pub fn new(manager: Arc<ManagerNode>, proxy: GridProxy) -> Self {
        Shell {
            manager,
            proxy,
            session: None,
            done: false,
        }
    }

    fn session_mut(&mut self) -> Result<&mut Session, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "no session — use: connect <n>".to_string())
    }

    /// Execute one command line; returns the text to display.
    pub fn exec(&mut self, line: &str) -> String {
        let mut parts = line.split_whitespace();
        let cmd = match parts.next() {
            Some(c) => c,
            None => return String::new(),
        };
        let rest: Vec<&str> = parts.collect();
        match self.dispatch(cmd, &rest, line) {
            Ok(out) => out,
            Err(e) => format!("error: {e}"),
        }
    }

    fn dispatch(&mut self, cmd: &str, args: &[&str], raw: &str) -> Result<String, String> {
        Ok(match cmd {
            "help" | "?" => HELP.to_string(),
            "tree" => self.manager.catalog_tree(),
            "ls" => {
                let folder = args.first().copied().unwrap_or("/");
                let items = self.manager.browse(folder).map_err(|e| e.to_string())?;
                let mut out = String::new();
                for i in items {
                    match i {
                        ipa_catalog::ListItem::Folder(f) => out.push_str(&format!("{f}/\n")),
                        ipa_catalog::ListItem::Dataset(e) => out.push_str(&format!(
                            "{}  [{} records, {:.2} MB]\n",
                            e.descriptor.id,
                            e.descriptor.records,
                            e.descriptor.size_mb()
                        )),
                    }
                }
                out
            }
            "search" => {
                // Preserve the raw query text (it contains spaces/quotes).
                let query = raw.trim().strip_prefix("search").unwrap_or("").trim();
                if query.is_empty() {
                    return Err("usage: search <query>".into());
                }
                let hits = self.manager.search(query).map_err(|e| e.to_string())?;
                let mut out = format!("{} match(es)\n", hits.len());
                for h in hits {
                    out.push_str(&format!("{}  {}\n", h.descriptor.id, h.path()));
                }
                out
            }
            "connect" => {
                let n: usize = args
                    .first()
                    .and_then(|a| a.parse().ok())
                    .ok_or("usage: connect <engines>")?;
                let s = self
                    .manager
                    .create_session(&self.proxy, 0.0, n)
                    .map_err(|e| e.to_string())?;
                let msg = format!("session {} with {} engines", s.id(), s.engines());
                self.session = Some(s);
                msg
            }
            "resume" => {
                let id: u64 = args
                    .first()
                    .and_then(|a| a.parse().ok())
                    .ok_or("usage: resume <session-id>")?;
                let mut s = self
                    .manager
                    .recover_session(id)
                    .map_err(|e| e.to_string())?;
                let state = s
                    .poll()
                    .map(|st| st.state)
                    .unwrap_or(ipa_core::RunState::Idle);
                let msg = format!(
                    "session {} recovered with {} engines (epoch {}, {state:?})",
                    s.id(),
                    s.engines(),
                    s.epoch(),
                );
                self.session = Some(s);
                msg
            }
            "select" => {
                let id = args
                    .first()
                    .ok_or("usage: select <dataset-id>")?
                    .to_string();
                let s = self.session_mut()?;
                s.select_dataset(&DatasetId::new(id.clone()))
                    .map_err(|e| e.to_string())?;
                format!(
                    "staged '{}' ({} records across {} engines)",
                    id,
                    s.dataset().map(|d| d.records).unwrap_or(0),
                    s.engines_alive()
                )
            }
            "native" => {
                let name = args.first().ok_or("usage: native <name>")?.to_string();
                self.session_mut()?
                    .load_code(AnalysisCode::Native(name.clone()))
                    .map_err(|e| e.to_string())?;
                format!("loaded native analyzer '{name}'")
            }
            "script" => {
                let file = args.first().ok_or("usage: script <file>")?;
                let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                self.session_mut()?
                    .load_code(AnalysisCode::Script(src))
                    .map_err(|e| e.to_string())?;
                format!("compiled and shipped {file}")
            }
            "run" => {
                self.session_mut()?.run().map_err(|e| e.to_string())?;
                "running".to_string()
            }
            "runn" => {
                let n: usize = args
                    .first()
                    .and_then(|a| a.parse().ok())
                    .ok_or("usage: runn <records>")?;
                self.session_mut()?
                    .run_events(n)
                    .map_err(|e| e.to_string())?;
                format!("running {n} records per engine")
            }
            "pause" => {
                self.session_mut()?.pause().map_err(|e| e.to_string())?;
                "paused".to_string()
            }
            "stop" => {
                self.session_mut()?.stop().map_err(|e| e.to_string())?;
                "stopped".to_string()
            }
            "rewind" => {
                self.session_mut()?.rewind().map_err(|e| e.to_string())?;
                "rewound to record 0".to_string()
            }
            "status" => {
                let subject = self.proxy.subject.clone();
                let s = self.session_mut()?;
                let st = s.poll().map_err(|e| e.to_string())?;
                let tree = s.results().map_err(|e| e.to_string())?;
                render_dashboard(&subject, &st, &tree, &DashboardOptions::default())
            }
            "plot" => {
                let path = args.first().ok_or("usage: plot </path/to/hist>")?;
                let s = self.session_mut()?;
                s.poll().map_err(|e| e.to_string())?;
                let tree = s.results().map_err(|e| e.to_string())?;
                let obj = tree.get(path).map_err(|e| e.to_string())?;
                match obj.as_h1() {
                    Some(h) => render_h1_ascii(h, &AsciiOptions::default()),
                    None => format!("'{path}' is a {} ({} entries)", obj.kind(), obj.entries()),
                }
            }
            "fit" => {
                if args.len() != 3 {
                    return Err("usage: fit <path> <lo> <hi>".into());
                }
                let (path, lo, hi) = (args[0], args[1], args[2]);
                let lo: f64 = lo.parse().map_err(|_| "lo must be numeric")?;
                let hi: f64 = hi.parse().map_err(|_| "hi must be numeric")?;
                let s = self.session_mut()?;
                s.poll().map_err(|e| e.to_string())?;
                let tree = s.results().map_err(|e| e.to_string())?;
                let h = tree
                    .get(path)
                    .map_err(|e| e.to_string())?
                    .as_h1()
                    .ok_or("fit needs a 1-D histogram")?
                    .clone();
                match ipa_aida::fit_gaussian_in(&h, lo, hi, 1.2) {
                    Some(fit) => format!(
                        "peak: mean = {:.3}, sigma = {:.3}, amplitude = {:.1} ({} bins)",
                        fit.mean, fit.sigma, fit.amplitude, fit.bins_used
                    ),
                    None => "no peak found in that window".to_string(),
                }
            }
            "report" => {
                let s = self.session_mut()?;
                let b = s
                    .staging_report(&PaperCalibration::paper2006())
                    .map_err(|e| e.to_string())?;
                format!(
                    "on the 2006 testbed this staging would cost:\n\
                     move whole {:.0} s · split {:.0} s · move parts {:.0} s · \
                     code {:.0} s · analysis {:.0} s → total {:.0} s",
                    b.move_whole_s,
                    b.split_s,
                    b.move_parts_s,
                    b.stage_code_s,
                    b.analysis_s,
                    b.total_s
                )
            }
            "workers" => self.manager.worker_registry().render(),
            "sessions" => self.manager.worker_registry().render_sessions(),
            "pool" => {
                let p = self.manager.pool_stats();
                if !p.enabled {
                    "engine pool: off (set IPA_ENGINE_POOL=on)\n".to_string()
                } else {
                    let mut out = format!(
                        "engine pool: cap {}  engines {}  leased {}  free {}  sessions {}\n\
                         leases granted {}  spawned {}  recycled {}  preemptions {}\n",
                        if p.cap == 0 {
                            "unbounded".to_string()
                        } else {
                            p.cap.to_string()
                        },
                        p.engines,
                        p.leased,
                        p.free,
                        p.sessions,
                        p.leases_granted,
                        p.engines_spawned,
                        p.engines_recycled,
                        p.preemptions_requested,
                    );
                    for (vo, n) in &p.by_vo {
                        out.push_str(&format!("  vo {vo}: {n} leased\n"));
                    }
                    out
                }
            }
            "sched" => {
                let s = self.session_mut()?;
                s.poll().map_err(|e| e.to_string())?;
                let st = s.sched_stats();
                let rates = st
                    .engine_rate
                    .iter()
                    .enumerate()
                    .map(|(i, r)| format!("e{i} {r:.0}/s"))
                    .collect::<Vec<_>>()
                    .join("  ");
                format!(
                    "policy {:?} · {} parts queued · {} stolen · {} speculated ({} won)\n\
                     engine throughput: {rates}",
                    st.policy,
                    st.parts_queued,
                    st.parts_stolen,
                    st.parts_speculated,
                    st.speculations_won
                )
            }
            "results" => {
                let s = self.session_mut()?;
                s.poll().map_err(|e| e.to_string())?;
                let rs = s.result_stats();
                format!(
                    "result version {} · {} dirty parts\n\
                     {} merges performed · {} cache hits · \
                     {} deltas applied · {} checkpoints · {} resyncs requested",
                    rs.result_version,
                    rs.dirty_parts,
                    rs.merges_performed,
                    rs.merge_cache_hits,
                    rs.deltas_applied,
                    rs.checkpoints_received,
                    rs.resyncs_requested
                )
            }
            "staging" => {
                let s = self.session_mut()?;
                let st = s.staging_stats();
                format!(
                    "{} parts staged · {:.2} MB moved · {} chunks · \
                     {} cache hits / {} misses · {} retries · {} failures\n\
                     last stage: locate {:.1} ms · split {:.1} ms · deliver {:.1} ms · \
                     overlap {:.0}% (sim {:.1}s pipelined vs {:.1}s read + {:.1}s transfer)",
                    st.parts_staged,
                    st.bytes_moved as f64 / 1e6,
                    st.chunks_sent,
                    st.cache_hits,
                    st.cache_misses,
                    st.retries,
                    st.transfer_failures,
                    st.locate_ms,
                    st.split_ms,
                    st.deliver_ms,
                    st.overlap_ratio * 100.0,
                    st.sim_pipelined_s,
                    st.sim_read_s,
                    st.sim_transfer_s
                )
            }
            "failures" => {
                let s = self.session_mut()?;
                if s.failures().is_empty() {
                    "no failures recorded".to_string()
                } else {
                    let mut out = String::new();
                    for rec in s.failures() {
                        out.push_str(&format!(
                            "epoch {}  engine {}  part {}  {}\n",
                            rec.epoch,
                            rec.engine,
                            rec.part.map_or("-".to_string(), |p| p.to_string()),
                            rec.message
                        ));
                    }
                    out
                }
            }
            "svg" => {
                let dir = args.first().ok_or("usage: svg <dir>")?;
                let s = self.session_mut()?;
                s.poll().map_err(|e| e.to_string())?;
                let tree = s.results().map_err(|e| e.to_string())?;
                let files = export_svg_plots(&tree, std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                format!("wrote {} files to {dir}", files.len())
            }
            "wait" => {
                // Undocumented helper for scripting the shell in tests.
                let secs: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(30);
                let s = self.session_mut()?;
                let st = s
                    .wait_finished(Duration::from_secs(secs))
                    .map_err(|e| e.to_string())?;
                format!("{:?}: {} records", st.state, st.records_processed)
            }
            "close" => {
                if let Some(mut s) = self.session.take() {
                    s.close();
                    "session closed".to_string()
                } else {
                    "no session".to_string()
                }
            }
            "quit" | "exit" => {
                if let Some(mut s) = self.session.take() {
                    s.close();
                }
                self.done = true;
                "bye".to_string()
            }
            other => format!("unknown command '{other}' — try 'help'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::IpaConfig;
    use ipa_dataset::{EventGeneratorConfig, GeneratorConfig};
    use ipa_simgrid::{SecurityDomain, VoPolicy};

    fn shell() -> Shell {
        let sec = SecurityDomain::new("shell-site", 13).with_policy(VoPolicy::new("ilc", 8));
        let manager = Arc::new(ManagerNode::new(
            "shell-site",
            sec.clone(),
            IpaConfig {
                publish_every: 200,
                ..Default::default()
            },
        ));
        manager
            .publish_dataset(
                "/lc",
                ipa_dataset::generate_dataset(
                    "lc-shell",
                    "events",
                    &GeneratorConfig::Event(EventGeneratorConfig {
                        events: 1_000,
                        ..Default::default()
                    }),
                ),
                ipa_catalog::Metadata::new(),
            )
            .unwrap();
        let proxy = sec.issue_proxy("/CN=shell", "ilc", 0.0, 1e6);
        Shell::new(manager, proxy)
    }

    #[test]
    fn full_scripted_session() {
        let mut sh = shell();
        assert!(sh.exec("help").contains("commands:"));
        assert!(sh.exec("tree").contains("lc-shell"));
        assert!(sh.exec("ls /lc").contains("lc-shell"));
        assert!(sh.exec("search id == \"lc-shell\"").contains("1 match"));

        // Commands that need a session fail gracefully first.
        assert!(sh.exec("run").contains("no session"));

        assert!(sh.exec("connect 2").contains("2 engines"));
        assert!(sh.exec("select lc-shell").contains("1000 records"));
        assert!(sh.exec("native higgs-search").contains("loaded"));
        assert!(sh.exec("report").contains("total"));
        sh.exec("run");
        let out = sh.exec("wait 60");
        assert!(out.contains("Finished: 1000 records"), "{out}");
        assert!(sh.exec("status").contains("100.0%"));
        assert!(sh.exec("plot /higgs/bb_mass").contains("entries="));
        assert!(sh.exec("fit /higgs/bb_mass 80 200").contains("mean"));
        assert!(sh.exec("workers").contains("wn000.shell-site"));
        let out = sh.exec("sessions");
        assert!(out.contains("ilc"), "{out}");
        assert!(out.contains("/CN=shell"), "{out}");
        // The pool command reports honestly whether a pool is running
        // (this shell's manager follows the IPA_ENGINE_POOL default).
        let out = sh.exec("pool");
        assert!(out.contains("engine pool"), "{out}");
        assert!(sh.exec("failures").contains("no failures"));
        assert!(sh.exec("sched").contains("parts queued"));
        let out = sh.exec("results");
        assert!(out.contains("result version"), "{out}");
        assert!(out.contains("cache hits"), "{out}");
        let out = sh.exec("staging");
        assert!(out.contains("parts staged"), "{out}");
        assert!(out.contains("0 cache hits / 1 misses"), "{out}");
        // Re-selecting the same dataset is answered by the split cache
        // and the staging panel shows the hit.
        sh.exec("select lc-shell");
        let out = sh.exec("staging");
        assert!(out.contains("1 cache hits / 1 misses"), "{out}");
        assert!(sh.exec("close").contains("closed"));
        assert!(sh.exec("quit").contains("bye"));
        assert!(sh.done);
    }

    #[test]
    fn error_paths_are_messages_not_panics() {
        let mut sh = shell();
        assert!(sh.exec("connect nope").contains("usage"));
        assert!(sh.exec("nonsense").contains("unknown command"));
        assert!(sh.exec("search energy >").contains("error"));
        sh.exec("connect 1");
        assert!(sh.exec("select missing-id").contains("error"));
        assert!(sh.exec("script /no/such/file.ipa").contains("error"));
        assert!(sh.exec("fit /x y z").contains("error"));
        assert!(sh.exec("plot /nothing").contains("error"));
        assert!(sh.exec("").is_empty());
        sh.exec("quit");
    }

    #[test]
    fn resume_recovers_a_journaled_session() {
        let dir = std::env::temp_dir().join(format!("ipa-shell-journal-{}", std::process::id()));
        let dir_s = dir.to_string_lossy().into_owned();
        let sec = SecurityDomain::new("shell-site", 13).with_policy(VoPolicy::new("ilc", 8));
        let manager = Arc::new(ManagerNode::new(
            "shell-site",
            sec.clone(),
            IpaConfig {
                publish_every: 200,
                journal: true,
                journal_dir: dir_s,
                journal_fsync: false,
                ..Default::default()
            },
        ));
        manager
            .publish_dataset(
                "/lc",
                ipa_dataset::generate_dataset(
                    "lc-shell",
                    "events",
                    &GeneratorConfig::Event(EventGeneratorConfig {
                        events: 1_000,
                        ..Default::default()
                    }),
                ),
                ipa_catalog::Metadata::new(),
            )
            .unwrap();
        let proxy = sec.issue_proxy("/CN=shell", "ilc", 0.0, 1e6);
        let mut sh = Shell::new(manager, proxy);
        sh.exec("connect 2");
        sh.exec("select lc-shell");
        sh.exec("native higgs-search");
        sh.exec("run");
        assert!(sh.exec("wait 60").contains("Finished"));
        assert!(sh.exec("close").contains("closed"));

        // The session is gone from memory; its id plus the write-ahead
        // log bring the whole thing back — results included.
        let out = sh.exec("resume 1");
        assert!(out.contains("recovered with 2 engines"), "{out}");
        assert!(sh.exec("status").contains("100.0%"));
        assert!(sh.exec("plot /higgs/bb_mass").contains("entries="));
        assert!(sh.exec("resume 99").contains("error"));
        sh.exec("quit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interactive_controls_via_shell() {
        let mut sh = shell();
        sh.exec("connect 2");
        sh.exec("select lc-shell");
        sh.exec("native higgs-search");
        assert!(sh.exec("runn 100").contains("100 records"));
        std::thread::sleep(Duration::from_millis(200));
        assert!(sh.exec("status").contains("200 / 1000"));
        assert!(sh.exec("rewind").contains("rewound"));
        sh.exec("run");
        assert!(sh.exec("wait 60").contains("1000"));
        sh.exec("quit");
    }
}

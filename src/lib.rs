//! `ipa` — facade crate for the Interactive Parallel Analysis framework.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! can depend on a single crate. See the README for the architecture and
//! DESIGN.md for the paper-to-module map.

#![warn(missing_docs)]

pub use ipa_aida as aida;
pub use ipa_catalog as catalog;
pub use ipa_client as client;
pub use ipa_core as core;
pub use ipa_dataset as dataset;
pub use ipa_model as model;
pub use ipa_script as script;
pub use ipa_simgrid as simgrid;
